"""Replay serve-layer workload traces against a sharded cluster.

The same JSON trace files :mod:`repro.serve.loadgen` synthesizes (Zipf
popularity, Poisson arrivals, seeded vectors) drive the cluster: matrices
are registered with the router once, and every trace entry becomes a
fingerprint-addressed :class:`~repro.cluster.request.ClusterRequest`.
Because the vectors are seeded, a cluster replay can be verified
bit-identically against direct uncached evaluation — exactly the
zero-divergence guarantee the single-server replay makes, now across
process boundaries and retries.

On top of the serve report fields, the cluster report carries the routing
story: per-shard completion counts, retry/failover totals, and how much
traffic the hot-key replica sets absorbed.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..core.api import evaluate as evaluate_uncached
from ..serve.loadgen import build_matrices, percentile
from .request import ClusterRequest


def materialize_cluster_request(entry: dict, fingerprint: str,
                                X) -> ClusterRequest:
    """Deterministic ClusterRequest for one trace entry (seeded vectors)."""
    rng = np.random.default_rng(int(entry["seed"]))
    y = rng.normal(size=X.n)
    beta = float(entry.get("beta", 0.0))
    return ClusterRequest(fingerprint, y,
                          z=(y if beta != 0.0 else None), beta=beta,
                          strategy=entry.get("strategy", "auto"),
                          deadline_ms=entry.get("deadline_ms"),
                          tenant=entry.get("tenant", ""),
                          tier=entry.get("tier", ""),
                          slo_ms=entry.get("slo_ms"))


def run_cluster_workload(router, trace: dict, verify: bool = False,
                         ctx=None) -> dict:
    """Replay a trace through a running router; returns the report dict.

    ``router`` is anything with the client surface (``register`` /
    ``submit``): an in-process :class:`~repro.cluster.router.ShardRouter`,
    a :class:`~repro.cluster.client.ClusterClient`, or a
    :class:`~repro.cluster.client.SocketClusterClient`.

    ``verify=True`` re-evaluates every completed request through uncached
    :func:`repro.core.api.evaluate` and counts byte-level divergences
    (expected zero: shards never cache numerics, and retries re-run the
    same deterministic inputs).
    """
    matrices = build_matrices(trace)
    fingerprints = {name: router.register(X)
                    for name, X in matrices.items()}
    entries = trace["requests"]
    requests = [materialize_cluster_request(
                    e, fingerprints[e["matrix"]], matrices[e["matrix"]])
                for e in entries]
    mode = trace.get("mode", "open")
    t0 = time.monotonic()

    if mode == "closed":
        concurrency = max(1, int(trace.get("concurrency") or 1))
        responses: list = [None] * len(requests)
        next_index = {"i": 0}
        index_lock = threading.Lock()

        def worker():
            while True:
                with index_lock:
                    i = next_index["i"]
                    if i >= len(requests):
                        return
                    next_index["i"] = i + 1
                responses[i] = router.submit(requests[i]).result()

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(concurrency)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        futures = []
        for entry, req in zip(entries, requests):
            due = t0 + float(entry.get("at_ms", 0.0)) / 1e3
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            futures.append(router.submit(req))
        responses = [f.result() for f in futures]
    wall_s = time.monotonic() - t0

    by_status: dict[str, int] = {}
    by_shard: dict[str, int] = {}
    latencies, waits, services = [], [], []
    warm = replica_routed = retried = 0
    for resp in responses:
        by_status[resp.status] = by_status.get(resp.status, 0) + 1
        replica_routed += bool(resp.replica_routed)
        retried += bool(resp.attempts > 1)
        if resp.ok:
            key = str(resp.shard)
            by_shard[key] = by_shard.get(key, 0) + 1
            latencies.append(resp.latency_ms)
            waits.append(resp.wait_ms)
            services.append(resp.service_ms)
            warm += bool(resp.cached)
    completed = by_status.get("ok", 0)

    tier_report: dict[str, dict] = {}
    if trace.get("tiers") or any("tier" in e for e in entries):
        for entry, resp in zip(entries, responses):
            name = entry.get("tier") or resp.tier or "default"
            rec = tier_report.setdefault(
                name, {"requests": 0, "by_status": {}, "_lat": [],
                       "slo_ms": entry.get("slo_ms"),
                       "_slo_ok": 0, "_slo_n": 0})
            rec["requests"] += 1
            rec["by_status"][resp.status] = \
                rec["by_status"].get(resp.status, 0) + 1
            if resp.ok:
                rec["_lat"].append(resp.latency_ms)
            slo = entry.get("slo_ms")
            if slo is not None:
                rec["_slo_n"] += 1
                if resp.ok and resp.latency_ms <= slo:
                    rec["_slo_ok"] += 1
        for rec in tier_report.values():
            lat = rec.pop("_lat")
            ok, n = rec.pop("_slo_ok"), rec.pop("_slo_n")
            rec["latency_ms"] = {"p50": percentile(lat, 0.50),
                                 "p99": percentile(lat, 0.99)}
            rec["slo_attainment"] = (ok / n) if n else None

    divergent = 0
    if verify:
        for entry, req, resp in zip(entries, requests, responses):
            if not resp.ok:
                continue
            X = matrices[entry["matrix"]]
            ref = evaluate_uncached(X, req.y, v=req.v, z=req.z,
                                    alpha=req.alpha, beta=req.beta,
                                    strategy=req.strategy, ctx=ctx)
            if not np.array_equal(resp.result.output, ref.output):
                divergent += 1

    return {
        "mode": mode,
        "requests": len(requests),
        "by_status": by_status,
        "by_shard": {k: by_shard[k] for k in sorted(by_shard)},
        "completed": completed,
        "wall_s": wall_s,
        "throughput_rps": completed / wall_s if wall_s > 0 else 0.0,
        "latency_ms": {"p50": percentile(latencies, 0.50),
                       "p99": percentile(latencies, 0.99),
                       "mean": (float(np.mean(latencies))
                                if latencies else 0.0),
                       "max": max(latencies, default=0.0)},
        "wait_ms_p99": percentile(waits, 0.99),
        "service_ms_p99": percentile(services, 0.99),
        "warm_fraction": warm / completed if completed else 0.0,
        "replica_routed": replica_routed,
        "retried": retried,
        "divergent": divergent if verify else None,
        "tiers": {k: tier_report[k] for k in sorted(tier_report)} or None,
    }


def format_cluster_report(report: dict) -> str:
    """One human-readable block for the CLI."""
    lat = report["latency_ms"]
    statuses = ", ".join(f"{k}={v}"
                         for k, v in sorted(report["by_status"].items()))
    shards = ", ".join(f"s{k}={v}"
                       for k, v in sorted(report["by_shard"].items()))
    lines = [
        f"mode:        {report['mode']}",
        f"requests:    {report['requests']} ({statuses})",
        f"shards:      {shards or 'none completed'}",
        f"wall:        {report['wall_s'] * 1e3:10.1f} ms "
        f"({report['throughput_rps']:.1f} req/s)",
        f"latency:     p50 {lat['p50']:.2f} ms, p99 {lat['p99']:.2f} ms, "
        f"mean {lat['mean']:.2f} ms, max {lat['max']:.2f} ms",
        f"queue wait:  p99 {report['wait_ms_p99']:.2f} ms; "
        f"service p99 {report['service_ms_p99']:.2f} ms",
        f"warm:        {100 * report['warm_fraction']:.1f}% of completed "
        "requests fully cached",
        f"routing:     {report['replica_routed']} replica-routed, "
        f"{report['retried']} retried at least once",
    ]
    for name, rec in (report.get("tiers") or {}).items():
        att = rec["slo_attainment"]
        att_s = f"{100 * att:.1f}% SLO attainment" if att is not None \
            else "no SLO"
        tier_statuses = ", ".join(
            f"{k}={v}" for k, v in sorted(rec["by_status"].items()))
        lines.append(
            f"tier {name}: {rec['requests']} reqs ({tier_statuses}); "
            f"p50 {rec['latency_ms']['p50']:.2f} ms, "
            f"p99 {rec['latency_ms']['p99']:.2f} ms; {att_s}")
    if report.get("divergent") is not None:
        lines.append(f"verified:    {report['divergent']} divergent outputs "
                     "vs uncached evaluation")
    return "\n".join(lines)
