"""Cluster-level metrics: merge per-shard snapshots into one export.

Every shard exports the same :meth:`ServeMetrics.snapshot` shape with
sorted keys at every level (that invariant is pinned by
``tests/test_serve_metrics.py``); this module folds N of those dicts into
one aggregate — counters sum, histograms merge bucket-by-bucket (all
shards share the same bucket bounds, so a cumulative-le merge is exact;
means and percentile estimates are recomputed from the merged buckets),
gauges sum, and engine stats sum where summing makes sense (hits, misses,
bytes) with the hit rate recomputed from the merged totals.

``cluster_prometheus`` renders the router's full snapshot (aggregate +
per-shard + routing counters) as one Prometheus text exposition, with
per-shard series labelled ``shard="<id>"``.
"""

from __future__ import annotations


def merge_counters(dicts: list[dict]) -> dict:
    """Sum numeric values key-by-key; output keys sorted."""
    out: dict = {}
    for d in dicts:
        for k, v in d.items():
            out[k] = out.get(k, 0) + v
    return {k: out[k] for k in sorted(out)}


def merge_histograms(hists: list[dict]) -> dict:
    """Merge ``Histogram.to_dict()`` exports sharing the same bounds."""
    if not hists:
        return {"buckets": {}, "count": 0, "max": 0.0, "mean": 0.0,
                "min": 0.0, "overflow": 0, "p50": 0.0, "p99": 0.0,
                "sum": 0.0}
    buckets: dict[str, int] = {b: 0 for b in hists[0]["buckets"]}
    count = overflow = 0
    total = 0.0
    lo = float("inf")
    hi = float("-inf")
    for h in hists:
        if set(h["buckets"]) != set(buckets):
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        for b, c in h["buckets"].items():
            buckets[b] += c
        count += h["count"]
        total += h["sum"]
        overflow += h["overflow"]
        if h["count"]:
            lo = min(lo, h["min"])
            hi = max(hi, h["max"])

    def percentile(q: float) -> float:
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0
        prev = 0.0
        for b in sorted(buckets, key=float):
            c = buckets[b]
            if seen + c >= rank and c > 0:
                frac = (rank - seen) / c
                return min(prev + frac * (float(b) - prev), hi)
            seen += c
            prev = float(b)
        return hi

    return {
        "buckets": buckets,
        "count": count,
        "max": hi if count else 0.0,
        "mean": total / count if count else 0.0,
        "min": lo if count else 0.0,
        "overflow": overflow,
        "p50": percentile(0.50),
        "p99": percentile(0.99),
        "sum": total,
    }


#: EngineStats fields where a cluster-wide sum is meaningful.
_ENGINE_SUM_FIELDS = (
    "artifact_bytes", "artifact_hits", "artifact_misses", "batch_requests",
    "batch_wall_ms", "batches", "bytes_cached", "calls", "cold_calls",
    "cold_model_ms", "compile_fallbacks", "compiled_kernels_built",
    "evictions", "fusion_plans_built", "invalidations", "kernels_compiled",
    "pinned_fingerprint_hits", "plan_entries", "plan_hits", "plan_misses",
    "profiles_built", "transposes_built", "warm_calls", "warm_model_ms",
)


def merge_engine_stats(stats: list[dict]) -> dict:
    """Sum summable EngineStats fields; recompute the hit rate."""
    out: dict = {f: 0 for f in _ENGINE_SUM_FIELDS
                 if any(f in s for s in stats)}
    kinds: dict[str, int] = {}
    batch_max = 0
    for s in stats:
        for f in out:
            out[f] += s.get(f, 0)
        batch_max = max(batch_max, s.get("batch_max_requests", 0))
        for kind, n in s.get("artifact_kinds", {}).items():
            kinds[kind] = kinds.get(kind, 0) + n
    out["batch_max_requests"] = batch_max
    lookups = out.get("plan_hits", 0) + out.get("plan_misses", 0)
    out["plan_hit_rate"] = (out.get("plan_hits", 0) / lookups
                            if lookups else 0.0)
    out["artifact_kinds"] = {k: kinds[k] for k in sorted(kinds)}
    return {k: out[k] for k in sorted(out)}


def aggregate_shards(snapshots: list[dict]) -> dict:
    """Fold N per-shard ``ServeMetrics.snapshot()`` dicts into one."""
    snapshots = [s for s in snapshots if s]
    agg = {
        "counters": merge_counters([s.get("counters", {})
                                    for s in snapshots]),
        "gauges": merge_counters([s.get("gauges", {}) for s in snapshots]),
        "histograms": {},
        "shards_reporting": len(snapshots),
    }
    names = sorted({name for s in snapshots
                    for name in s.get("histograms", {})})
    for name in names:
        agg["histograms"][name] = merge_histograms(
            [s["histograms"][name] for s in snapshots
             if name in s.get("histograms", {})])
    engine = [s["engine"] for s in snapshots if "engine" in s]
    if engine:
        agg["engine"] = merge_engine_stats(engine)
    tier_names = sorted({name for s in snapshots
                         for name in s.get("tiers", {})})
    if tier_names:
        tiers: dict[str, dict] = {}
        for name in tier_names:
            recs = [s["tiers"][name] for s in snapshots
                    if name in s.get("tiers", {})]
            ok = sum(r.get("slo_ok", 0) for r in recs)
            miss = sum(r.get("slo_miss", 0) for r in recs)
            tiers[name] = {
                "counts": merge_counters([r.get("counts", {})
                                          for r in recs]),
                "latency_ms": merge_histograms(
                    [r["latency_ms"] for r in recs if "latency_ms" in r]),
                "slo_attainment": (ok / (ok + miss)) if ok + miss else None,
                "slo_miss": miss,
                "slo_ok": ok,
            }
        agg["tiers"] = tiers
    phases = [s["phases"] for s in snapshots if "phases" in s]
    if phases:
        merged: dict[str, dict] = {}
        for p in phases:
            for phase, tot in p.items():
                slot = merged.setdefault(phase,
                                         {"count": 0, "total_ms": 0.0})
                slot["count"] += tot.get("count", 0)
                slot["total_ms"] += tot.get("total_ms", 0.0)
        agg["phases"] = {k: merged[k] for k in sorted(merged)}
    return {k: agg[k] for k in sorted(agg)}


def cluster_prometheus(snapshot: dict) -> str:
    """Render a router ``metrics_snapshot()`` as Prometheus text format."""
    lines: list[str] = []

    lines.append("# HELP repro_cluster_router_total router events by kind")
    lines.append("# TYPE repro_cluster_router_total counter")
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f'repro_cluster_router_total{{event="{name}"}} {value}')

    lines.append("# HELP repro_cluster_gauge router-level gauges")
    lines.append("# TYPE repro_cluster_gauge gauge")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f'repro_cluster_gauge{{name="{name}"}} {value}')

    hot = snapshot.get("hotkeys", {})
    if hot:
        lines.append("# HELP repro_cluster_hot_keys fingerprints currently "
                     "over the replication threshold")
        lines.append("# TYPE repro_cluster_hot_keys gauge")
        lines.append(f"repro_cluster_hot_keys {len(hot.get('hot_keys', []))}")

    agg = snapshot.get("aggregate", {})
    lines.append("# HELP repro_cluster_requests_total aggregate worker "
                 "requests by terminal status")
    lines.append("# TYPE repro_cluster_requests_total counter")
    for status in ("completed", "shed", "timeout", "rejected", "errors"):
        value = agg.get("counters", {}).get(status, 0)
        lines.append(f'repro_cluster_requests_total{{status="{status}"}} '
                     f'{value}')

    for hname, hist in agg.get("histograms", {}).items():
        metric = f"repro_cluster_{hname}"
        lines.append(f"# HELP {metric} aggregate serving histogram "
                     f"({hname})")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound in sorted(hist["buckets"], key=float):
            cumulative += hist["buckets"][bound]
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        cumulative += hist["overflow"]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {hist['sum']}")
        lines.append(f"{metric}_count {hist['count']}")

    if agg.get("tiers"):
        lines.append("# HELP repro_cluster_tier_requests_total aggregate "
                     "worker outcomes by tier and status")
        lines.append("# TYPE repro_cluster_tier_requests_total counter")
        for tname, tier in agg["tiers"].items():
            for status, n in tier.get("counts", {}).items():
                lines.append(f'repro_cluster_tier_requests_total'
                             f'{{tier="{tname}",status="{status}"}} {n}')
        lines.append("# HELP repro_cluster_tier_slo_attainment aggregate "
                     "fraction of SLO-carrying requests served within SLO")
        lines.append("# TYPE repro_cluster_tier_slo_attainment gauge")
        for tname, tier in agg["tiers"].items():
            att = tier.get("slo_attainment")
            if att is not None:
                lines.append(f'repro_cluster_tier_slo_attainment'
                             f'{{tier="{tname}"}} {att}')

    eng = agg.get("engine")
    if eng:
        lines.append("# HELP repro_cluster_engine_plan_hit_rate merged "
                     "plan-cache hit rate across shards")
        lines.append("# TYPE repro_cluster_engine_plan_hit_rate gauge")
        lines.append(f"repro_cluster_engine_plan_hit_rate "
                     f"{eng['plan_hit_rate']}")
        lines.append("# HELP repro_cluster_engine_bytes_cached merged "
                     "engine cache bytes across shards")
        lines.append("# TYPE repro_cluster_engine_bytes_cached gauge")
        lines.append(f"repro_cluster_engine_bytes_cached "
                     f"{eng.get('bytes_cached', 0)}")

    lines.append("# HELP repro_cluster_shard_gauge per-shard link and "
                 "cache gauges")
    lines.append("# TYPE repro_cluster_shard_gauge gauge")
    for shard, entry in snapshot.get("shards", {}).items():
        for name in ("cached_matrices", "in_flight", "outstanding",
                     "queue_depth"):
            lines.append(f'repro_cluster_shard_gauge{{shard="{shard}",'
                         f'name="{name}"}} {entry.get(name, 0)}')
        healthy = 1 if entry.get("healthy") else 0
        lines.append(f'repro_cluster_shard_gauge{{shard="{shard}",'
                     f'name="healthy"}} {healthy}')
        for status in ("completed", "shed", "timeout", "rejected"):
            value = entry.get("metrics", {}).get("counters", {}) \
                         .get(status, 0)
            lines.append(f'repro_cluster_shard_requests_total'
                         f'{{shard="{shard}",status="{status}"}} {value}')
    return "\n".join(lines) + "\n"
