"""Request/response/future types for the sharded cluster front door.

Mirrors :mod:`repro.serve.request` one layer up: a
:class:`ClusterRequest` describes one pattern evaluation *by matrix
content fingerprint* (the matrix itself is registered with the router once
and uploaded to shards on demand), and every submission resolves a
:class:`ClusterFuture` with a terminal :class:`ClusterResponse` — shed,
timeout, rejection, worker error, and transport exhaustion are all
*statuses*, never raised exceptions, exactly as in the single-server layer.

The response carries the routing story on top of the worker's serving
fields: which shard answered, how many forwarding attempts were needed,
and whether the request was routed via the hot-key replica set.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..kernels.base import KernelResult
from ..serve.request import (STATUS_ERROR, STATUS_OK, STATUS_REJECTED,
                             STATUS_SHED, STATUS_TIMEOUT, STATUSES)

__all__ = [
    "STATUS_ERROR", "STATUS_OK", "STATUS_REJECTED", "STATUS_SHED",
    "STATUS_TIMEOUT", "STATUSES", "ClusterFuture", "ClusterRequest",
    "ClusterResponse",
]


@dataclass
class ClusterRequest:
    """One fingerprint-addressed pattern evaluation."""

    fingerprint: str
    y: np.ndarray
    v: np.ndarray | None = None
    z: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0
    inner: bool = True
    strategy: str = "auto"
    deadline_ms: float | None = None
    tenant: str = ""
    tier: str = ""                  # service class; "" = worker default
    slo_ms: float | None = None

    def to_wire(self) -> dict:
        """The OP_EVAL payload fields (rid is added by the channel)."""
        return {"fingerprint": self.fingerprint, "y": self.y, "v": self.v,
                "z": self.z, "alpha": self.alpha, "beta": self.beta,
                "inner": self.inner, "strategy": self.strategy,
                "deadline_ms": self.deadline_ms, "tenant": self.tenant,
                "tier": self.tier, "slo_ms": self.slo_ms}


@dataclass
class ClusterResponse:
    """Terminal outcome of one routed request."""

    id: int
    status: str
    fingerprint: str = ""
    result: KernelResult | None = None
    reason: str = ""
    shard: int | None = None      # shard that produced the terminal reply
    attempts: int = 1             # forwarding attempts (1 = no retry)
    replica_routed: bool = False  # chosen via the hot-key replica set
    latency_ms: float = 0.0       # router submit -> resolution
    wait_ms: float = 0.0          # worker-side queue wait
    service_ms: float = 0.0       # worker-side engine wall time
    batch_size: int = 0           # worker-side micro-batch size
    cached: bool = False          # worker engine served it fully warm
    tier: str = ""                # service class the worker resolved

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class ClusterFuture:
    """Write-once handle resolved by the router with a ClusterResponse."""

    __slots__ = ("_event", "_response", "_callbacks", "_cb_lock",
                 "resolved_at")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: ClusterResponse | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()
        self.resolved_at: float | None = None

    def resolve(self, response: ClusterResponse) -> bool:
        """First resolution wins; later ones are ignored (returns False)."""
        with self._cb_lock:
            if self._event.is_set():
                return False
            self._response = response
            self.resolved_at = time.monotonic()
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(response)
        return True

    def add_done_callback(self, fn) -> None:
        """Run ``fn(response)`` on resolution (immediately if resolved)."""
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
            response = self._response
        assert response is not None
        fn(response)

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ClusterResponse:
        if not self._event.wait(timeout):
            raise TimeoutError("request was not resolved within the timeout")
        # Event.wait() publication barrier, as in ServeFuture.result
        # analyze: allow(atomicity)
        assert self._response is not None
        return self._response


@dataclass
class _RouterTicket:
    """Internal per-request routing state (attempts, exclusions, timing)."""

    id: int
    request: ClusterRequest
    submitted_at: float
    attempts: int = 0
    replica_routed: bool = False
    reuploaded_shards: set = field(default_factory=set)
    failed_shards: set = field(default_factory=set)
    future: ClusterFuture = field(default_factory=ClusterFuture)
