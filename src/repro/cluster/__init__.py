"""Sharded multi-process serving with fingerprint-affinity routing.

The cluster layer scales the single-process :mod:`repro.serve` server
horizontally: a :class:`ShardRouter` front process consistent-hashes each
request's matrix content fingerprint onto N worker processes (each an
independent :class:`~repro.serve.server.PatternServer` with its own
engine and artifact LRU), so every shard's caches hold a disjoint slice
of the working set and aggregate warm capacity grows with the shard
count.  Hot fingerprints — the Zipf head — are replicated across R
shards and balanced with power-of-two-choices; worker failures fail over
along the hash ring with bounded retries, and exhaustion yields a
deterministic ``rejected`` response, never a hang.

Entry points: ``repro cluster`` on the CLI, :class:`ShardRouter` /
:class:`ClusterClient` in-process, :class:`SocketClusterClient` and
:class:`AsyncClusterClient` over the socket front door.
"""

from .channel import ShardChannel
from .client import AsyncClusterClient, ClusterClient, SocketClusterClient
from .hashring import HashRing, ring_point
from .hotkeys import HotKeyTracker
from .loadgen import format_cluster_report, run_cluster_workload
from .metrics import (aggregate_shards, cluster_prometheus, merge_counters,
                      merge_engine_stats, merge_histograms)
from .request import (ClusterFuture, ClusterRequest, ClusterResponse,
                      STATUS_ERROR, STATUS_OK, STATUS_REJECTED, STATUS_SHED,
                      STATUS_TIMEOUT)
from .router import ClusterConfig, ShardRouter
from .worker import WorkerConfig, WorkerHost

__all__ = [
    "AsyncClusterClient", "ClusterClient", "ClusterConfig", "ClusterFuture",
    "ClusterRequest", "ClusterResponse", "HashRing", "HotKeyTracker",
    "STATUS_ERROR", "STATUS_OK", "STATUS_REJECTED", "STATUS_SHED",
    "STATUS_TIMEOUT", "ShardChannel", "ShardRouter", "SocketClusterClient",
    "WorkerConfig", "WorkerHost", "aggregate_shards", "cluster_prometheus",
    "format_cluster_report", "merge_counters", "merge_engine_stats",
    "merge_histograms", "ring_point", "run_cluster_workload",
]
