"""Length-prefixed message framing for the cluster's socket links.

One frame = a 4-byte big-endian payload length followed by a pickled
Python object (messages are plain dicts with an ``"op"`` key; payloads
carry numpy vectors and ``CsrMatrix`` uploads).  The same framing runs on
every link — router→worker forwarding, the router's client-facing front
door, and the asyncio client — so there is exactly one wire format to test.

Pickle is appropriate here (and *only* here): every endpoint is a process
this package itself spawned, or a client on the same trust domain; the
protocol is an internal transport, not a public network API.  A maximum
frame size guards against framing corruption turning into an unbounded
allocation.

``recv_msg`` distinguishes a *clean* close (EOF exactly on a frame
boundary, returns ``None``) from a *torn* one (EOF mid-frame, raises
``ConnectionError``) — the router relies on that to tell graceful worker
shutdown from a crash.
"""

from __future__ import annotations

import pickle
import socket
import struct

#: Frames bigger than this indicate corruption, not data (uploads of the
#: benchmark matrices are a few MB; 1 GiB is far beyond any legal frame).
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct(">I")

# message ops, router -> worker
OP_EVAL = "eval"            # evaluate one request against a cached matrix
OP_UPLOAD = "upload"        # cache a matrix under its fingerprint
OP_PING = "ping"            # health probe; replies with load gauges
OP_METRICS = "metrics"      # full ServeMetrics + engine snapshot
OP_DRAIN = "drain"          # graceful shutdown: drain server, then exit

# message ops, worker -> router (every reply echoes the request's "rid")
OP_RESULT = "result"        # terminal response for an OP_EVAL
OP_OK = "ok"                # acknowledgement (upload, drain)
OP_PONG = "pong"            # health reply: queue_depth / in_flight gauges

# client-facing ops on the router's front door
OP_REGISTER = "register"    # publish a matrix to the router's registry
OP_CLUSTER_METRICS = "cluster-metrics"

#: machine-readable reason code a worker attaches when asked to evaluate a
#: fingerprint it has no matrix for (the router re-uploads and resends)
CODE_UNKNOWN_FINGERPRINT = "unknown-fingerprint"


def send_msg(sock: socket.socket, obj) -> None:
    """Serialize ``obj`` and write one frame (callers serialize access)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds "
                         f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF *before the first byte*.

    EOF after a partial read is a torn frame and raises ``ConnectionError``
    — the caller must not mistake it for a clean shutdown.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ConnectionError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket):
    """Read one frame; ``None`` on clean EOF (close at a frame boundary)."""
    header = recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"oversized frame announced ({length} bytes); "
                              "treating the link as corrupt")
    payload = recv_exact(sock, length)
    if payload is None:
        raise ConnectionError("connection closed between header and payload")
    return pickle.loads(payload)
