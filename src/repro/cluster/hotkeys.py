"""Sliding-popularity tracking for hot-key replication decisions.

Zipf-skewed traffic concentrates on a few fingerprints; routing strictly by
the hash ring would pin all of that load on each hot key's primary shard.
The tracker keeps decayed per-fingerprint request counts and classifies a
fingerprint as *hot* once it has both enough absolute observations and a
traffic share above the configured threshold — the signal the router uses
to mirror the key across its ring replica set and load-balance among the
replicas (the 1.5D-replication tradeoff of arXiv:2203.07673: replicate the
dense few, partition the long tail).

Aging is deterministic: after every ``window`` recorded requests all counts
are halved, so a key that cools off loses hot status within a bounded
number of requests (no wall-clock dependence — replays stay reproducible).
"""

from __future__ import annotations

import threading


class HotKeyTracker:
    """Decayed per-key popularity counts with a hot-share classifier."""

    def __init__(self, threshold: float = 0.2, min_requests: int = 16,
                 window: int = 1024):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.threshold = threshold
        self.min_requests = min_requests
        self.window = window
        self._lock = threading.Lock()
        self._counts: dict[str, float] = {}
        self._total = 0.0
        self._since_decay = 0
        self._promotions = 0

    def record(self, key: str) -> bool:
        """Count one request for ``key``; returns its (new) hot status."""
        with self._lock:
            self._counts[key] = self._counts.get(key, 0.0) + 1.0
            self._total += 1.0
            self._since_decay += 1
            if self._since_decay >= self.window:
                self._decay_locked()
            return self._is_hot_locked(key)

    def _decay_locked(self) -> None:
        self._since_decay = 0
        self._counts = {k: c / 2.0 for k, c in self._counts.items()
                        if c / 2.0 >= 0.5}
        self._total = sum(self._counts.values())

    def _is_hot_locked(self, key: str) -> bool:
        count = self._counts.get(key, 0.0)
        return (count >= self.min_requests
                and self._total > 0
                and count / self._total >= self.threshold)

    def is_hot(self, key: str) -> bool:
        with self._lock:
            return self._is_hot_locked(key)

    def hot_keys(self) -> list[str]:
        """Currently-hot keys, sorted (deterministic for metrics export)."""
        with self._lock:
            return sorted(k for k in self._counts
                          if self._is_hot_locked(k))

    def share(self, key: str) -> float:
        with self._lock:
            if self._total <= 0:
                return 0.0
            return self._counts.get(key, 0.0) / self._total

    def note_promotion(self) -> None:
        with self._lock:
            self._promotions += 1

    def snapshot(self) -> dict:
        """Sorted-key summary folded into the cluster metrics endpoint."""
        with self._lock:
            hot = sorted(k for k in self._counts if self._is_hot_locked(k))
            return {
                "hot_keys": hot,
                "min_requests": self.min_requests,
                "promotions": self._promotions,
                "threshold": self.threshold,
                "tracked_keys": len(self._counts),
                "window": self.window,
            }
