"""Shard worker: a ``PatternServer`` wrapped in a socket message loop.

Each shard is one OS process (its own GIL, its own
:class:`~repro.core.engine.PatternEngine` artifact LRU) running a
:class:`WorkerHost`: an accept loop whose per-connection handler decodes
length-prefixed messages and dispatches them —

* ``upload``   — cache a matrix under its content fingerprint (bounded
  LRU of matrices; the engine's own plan/artifact LRUs hang off it);
* ``eval``     — build a :class:`~repro.serve.request.ServeRequest` against
  the cached matrix and submit it to the embedded micro-batching server;
  the response is written back asynchronously when the serve future
  resolves, so the link stays pipelined (many in-flight rids per
  connection) and the worker's fingerprint batcher keeps its effect;
* ``ping``     — immediate health reply carrying queue-depth/in-flight
  gauges (the router's heartbeat and load signal);
* ``metrics``  — the full sorted-key ServeMetrics + engine snapshot;
* ``drain``    — graceful shutdown: stop the server (in-flight completes,
  queued requests get deterministic rejections), ack, then exit.

A request for an unknown fingerprint is answered with a machine-readable
``unknown-fingerprint`` error so the router can re-upload and resend —
workers never block waiting for data they do not have.

``worker_main`` is the ``multiprocessing`` entry point: it binds an
ephemeral localhost port, reports it through the parent's pipe, and serves
until drained.  Worker processes are daemonic, so a crashed router can
never leak them past its own lifetime.
"""

from __future__ import annotations

import queue
import socket
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..core.engine import PatternEngine
from ..serve.request import ServeRequest
from ..serve.server import PatternServer, ServerConfig
from .protocol import (CODE_UNKNOWN_FINGERPRINT, OP_DRAIN, OP_EVAL,
                       OP_METRICS, OP_OK, OP_PING, OP_PONG, OP_RESULT,
                       OP_UPLOAD, recv_msg, send_msg)


@dataclass
class WorkerConfig:
    """Per-shard tunables (a ``ServerConfig`` plus engine/cache bounds)."""

    shard_id: int = 0
    queue_capacity: int = 4096       # deep: the router is the admission edge
    max_batch: int = 16
    batch_linger_ms: float = 1.0
    workers: int = 1
    engine_workers: int = 1
    policy: str = "fingerprint"
    max_plans: int = 256
    max_artifact_bytes: int = 256 * 1024 * 1024
    max_matrices: int = 0            # cached matrices per shard (0 = unbounded)
    # SLO scheduling knobs, forwarded verbatim to the embedded server
    # (all dataclasses, so a WorkerConfig stays multiprocessing-picklable)
    tiers: dict | None = None        # name -> repro.serve.TierSpec
    default_slo_ms: float | None = None
    autoscale: object | None = None  # repro.serve.AutoscaleConfig

    def server_config(self) -> ServerConfig:
        return ServerConfig(
            queue_capacity=self.queue_capacity, max_batch=self.max_batch,
            batch_linger_ms=self.batch_linger_ms, workers=self.workers,
            engine_workers=self.engine_workers, policy=self.policy,
            tiers=self.tiers, default_slo_ms=self.default_slo_ms,
            autoscale=self.autoscale)


class WorkerHost:
    """Socket front of one shard's ``PatternServer`` (also usable
    in-process: tests drive the handler over a ``socketpair``)."""

    def __init__(self, config: WorkerConfig | None = None,
                 engine: PatternEngine | None = None):
        self.config = config or WorkerConfig()
        self.engine = engine or PatternEngine(
            max_plans=self.config.max_plans,
            max_artifact_bytes=self.config.max_artifact_bytes)
        self.server = PatternServer(self.engine,
                                    self.config.server_config())
        self._matrices: OrderedDict[str, object] = OrderedDict()
        self._matrices_lock = threading.Lock()
        self._drained = threading.Event()
        self._listener: socket.socket | None = None
        self._handler_threads: list[threading.Thread] = []

    # ------------------------------------------------------------ matrix cache
    def cache_matrix(self, fingerprint: str, matrix) -> None:
        evicted = []
        with self._matrices_lock:
            self._matrices[fingerprint] = matrix
            self._matrices.move_to_end(fingerprint)
            cap = self.config.max_matrices
            while cap and len(self._matrices) > cap:
                evicted.append(self._matrices.popitem(last=False)[1])
        for X in evicted:        # drop the engine's derived state with it
            self.engine.invalidate(X)

    def lookup_matrix(self, fingerprint: str):
        with self._matrices_lock:
            matrix = self._matrices.get(fingerprint)
            if matrix is not None:
                self._matrices.move_to_end(fingerprint)
            return matrix

    @property
    def cached_matrices(self) -> int:
        with self._matrices_lock:
            return len(self._matrices)

    # -------------------------------------------------------------- dispatch
    def handle_connection(self, conn: socket.socket) -> None:
        """Serve one link until EOF or drain (blocking; runs per-thread)."""
        out: queue.Queue = queue.Queue()
        writer = threading.Thread(
            target=self._write_loop, args=(conn, out),
            name=f"repro-cluster-w{self.config.shard_id}-writer",
            daemon=True)
        writer.start()
        try:
            while True:
                try:
                    msg = recv_msg(conn)
                except (ConnectionError, OSError):
                    break
                if msg is None:                      # clean close
                    break
                if not self._dispatch(msg, out):     # drain acked
                    break
        finally:
            out.put(None)
            writer.join()
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, msg: dict, out: queue.Queue) -> bool:
        """Handle one message; False once a drain has been acknowledged."""
        op = msg.get("op")
        rid = msg.get("rid")
        if op == OP_EVAL:
            self._handle_eval(msg, rid, out)
        elif op == OP_UPLOAD:
            self.cache_matrix(msg["fingerprint"], msg["matrix"])
            out.put({"op": OP_OK, "rid": rid})
        elif op == OP_PING:
            out.put({"op": OP_PONG, "rid": rid,
                     "shard": self.config.shard_id,
                     "queue_depth": self.server.queue_depth,
                     "in_flight": self.server.in_flight})
        elif op == OP_METRICS:
            out.put({"op": OP_OK, "rid": rid,
                     "shard": self.config.shard_id,
                     "cached_matrices": self.cached_matrices,
                     "metrics": self.server.metrics_snapshot()})
        elif op == OP_DRAIN:
            # in-flight batches complete, the queue resolves as rejected;
            # eval responses enqueue *before* this ack, so the router sees
            # every outcome before the drain completes
            self.server.stop()
            self._drained.set()
            out.put({"op": OP_OK, "rid": rid, "drained": True})
            return False
        else:
            out.put({"op": OP_RESULT, "rid": rid, "status": "error",
                     "reason": f"unknown op {op!r}"})
        return True

    def _handle_eval(self, msg: dict, rid, out: queue.Queue) -> None:
        fp = msg["fingerprint"]
        matrix = self.lookup_matrix(fp)
        if matrix is None:
            out.put({"op": OP_RESULT, "rid": rid, "status": "error",
                     "code": CODE_UNKNOWN_FINGERPRINT,
                     "reason": f"no matrix cached for fingerprint {fp}"})
            return
        try:
            request = ServeRequest(
                matrix, msg["y"], v=msg.get("v"), z=msg.get("z"),
                alpha=msg.get("alpha", 1.0), beta=msg.get("beta", 0.0),
                inner=msg.get("inner", True),
                strategy=msg.get("strategy", "auto"),
                deadline_ms=msg.get("deadline_ms"),
                tenant=msg.get("tenant", ""), tier=msg.get("tier", ""),
                slo_ms=msg.get("slo_ms"))
            future = self.server.submit(request)
        except ValueError as exc:            # shape errors, caller's fault
            out.put({"op": OP_RESULT, "rid": rid, "status": "error",
                     "reason": f"{type(exc).__name__}: {exc}"})
            return
        future.add_done_callback(
            lambda resp, rid=rid: out.put(
                {"op": OP_RESULT, "rid": rid, "status": resp.status,
                 "result": resp.result, "reason": resp.reason,
                 "fingerprint": resp.fingerprint, "wait_ms": resp.wait_ms,
                 "service_ms": resp.service_ms,
                 "batch_size": resp.batch_size, "cached": resp.cached,
                 "tier": resp.tier}))

    @staticmethod
    def _write_loop(conn: socket.socket, out: queue.Queue) -> None:
        """Single writer per connection: frames never interleave."""
        while True:
            msg = out.get()
            if msg is None:
                return
            try:
                send_msg(conn, msg)
            except (OSError, ValueError):
                # link gone: keep draining the queue so producer callbacks
                # never block, but stop touching the socket
                while out.get() is not None:
                    pass
                return

    # ------------------------------------------------------------- lifecycle
    def serve_forever(self, listener: socket.socket) -> None:
        """Accept loop; returns once drained (listener is closed here)."""
        self._listener = listener
        listener.settimeout(0.2)
        try:
            while not self._drained.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                t = threading.Thread(
                    target=self.handle_connection, args=(conn,),
                    name=f"repro-cluster-w{self.config.shard_id}-conn",
                    daemon=True)
                t.start()
                self._handler_threads.append(t)
        finally:
            try:
                listener.close()
            except OSError:
                pass
            for t in self._handler_threads:
                t.join(timeout=5.0)
            self.server.stop()               # idempotent; covers EOF exits


def worker_main(pipe, config: WorkerConfig) -> None:
    """Process entry point: bind, report the port, serve until drained."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(16)
    host = WorkerHost(config)
    try:
        pipe.send(listener.getsockname()[1])
        pipe.close()
        host.serve_forever(listener)
    finally:
        host.server.stop()
