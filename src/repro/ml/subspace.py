"""Block power (subspace) iteration on ``X^T X`` via the multi-RHS kernel.

HITS (Table 1) tracks the single leading eigenvector of ``X^T X``; its
natural generalization — top-r spectral analysis of a term-document or link
matrix (LSA, spectral ranking) — iterates a whole block::

    B <- orthonormalize( X^T (X B) )

Each iteration is exactly one multi-RHS fused pattern
(:func:`repro.kernels.fused_pattern_multi`): the matrix is read once for all
r directions, which is where the block method earns its keep over r
independent HITS runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..kernels.sparse_multi import fused_pattern_multi
from ..sparse.csr import CsrMatrix


@dataclass
class SubspaceResult:
    """Top-r eigenpairs of ``X^T X`` (singular directions of ``X``)."""

    vectors: np.ndarray          # (n, r), orthonormal columns
    eigenvalues: np.ndarray      # (r,), descending
    iterations: int
    delta: float
    total_time_ms: float

    @property
    def singular_values(self) -> np.ndarray:
        return np.sqrt(np.maximum(self.eigenvalues, 0.0))


def subspace_iteration(X: CsrMatrix, r: int = 4, max_iterations: int = 200,
                       tol: float = 1e-9,
                       ctx: GpuContext = DEFAULT_CONTEXT,
                       rng: np.random.Generator | int | None = None
                       ) -> SubspaceResult:
    """Compute the top-r eigenpairs of ``X^T X`` by block power iteration.

    Orthonormalization is done host-side via QR (SystemML-style: small
    ``n x r`` panels stay on the CPU); the heavy ``X^T X B`` product runs as
    a single fused multi-RHS kernel per iteration and dominates the model
    time, which is accumulated into ``total_time_ms``.
    """
    m, n = X.shape
    if not 1 <= r <= n:
        raise ValueError(f"r must be in [1, {n}]")
    gen = np.random.default_rng(rng)
    B = np.linalg.qr(gen.normal(size=(n, r)))[0]
    total_ms = 0.0
    delta = np.inf
    it = 0
    for it in range(1, max_iterations + 1):
        res = fused_pattern_multi(X, B, ctx=ctx)
        total_ms += res.time_ms
        Q, _ = np.linalg.qr(res.output)
        # sign-fix columns so convergence is measurable
        signs = np.sign(np.sum(Q * B, axis=0))
        signs[signs == 0] = 1.0
        Q = Q * signs
        delta = float(np.abs(Q - B).max())
        B = Q
        if delta <= tol:
            break
    # Rayleigh quotients give the eigenvalues; sort descending
    AB = fused_pattern_multi(X, B, ctx=ctx)
    total_ms += AB.time_ms
    evals = np.einsum("ij,ij->j", B, AB.output)
    order = np.argsort(-evals)
    return SubspaceResult(vectors=B[:, order], eigenvalues=evals[order],
                          iterations=it, delta=delta,
                          total_time_ms=total_ms)
