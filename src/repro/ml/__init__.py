"""The five ML algorithms of Table 1, composed from the generic pattern."""

from .glm import FAMILIES, GlmResult, glm_irls
from .hits import HitsResult, hits
from .linreg import LinRegResult, linreg_cg
from .logreg import LogRegResult, logreg_trust_region
from .multinomial import MultinomialResult, multinomial_logreg
from .runtime import BACKENDS, MLRuntime, TimeLedger
from .subspace import SubspaceResult, subspace_iteration
from .svm import SvmResult, svm_primal

__all__ = [
    "FAMILIES", "GlmResult", "glm_irls",
    "HitsResult", "hits",
    "LinRegResult", "linreg_cg",
    "LogRegResult", "logreg_trust_region",
    "MultinomialResult", "multinomial_logreg",
    "BACKENDS", "MLRuntime", "TimeLedger",
    "SubspaceResult", "subspace_iteration",
    "SvmResult", "svm_primal",
]
