"""Multinomial logistic regression via per-class trust-region Newton.

The paper lists "binomial/multinomial logistic regression (LogReg, via trust
region method)" among the pattern's consumers.  The multinomial trust-region
Newton of Lin, Weng & Keerthi block-diagonalizes the Hessian per class, so
each class's subproblem is exactly the binomial machinery — i.e. K
independent streams of the *complete* pattern
``X^T (D_k ⊙ (X s)) + lambda s``.  We implement the standard
one-vs-rest decomposition on top of :func:`repro.ml.logreg.logreg_trust_region`
with a shared softmax readout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .logreg import logreg_trust_region
from .runtime import MLRuntime


@dataclass
class MultinomialResult:
    """Per-class weight matrix plus training metadata."""

    W: np.ndarray                 # (n_features, n_classes)
    classes: np.ndarray
    newton_iterations: int
    cg_iterations: int
    total_time_ms: float

    def decision_values(self, X) -> np.ndarray:
        from ..sparse.csr import CsrMatrix
        from ..sparse.ops import spmm
        if isinstance(X, CsrMatrix):
            return spmm(X, self.W)
        return np.asarray(X, dtype=np.float64) @ self.W

    def predict(self, X) -> np.ndarray:
        scores = self.decision_values(X)
        return self.classes[np.argmax(scores, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        scores = self.decision_values(X)
        scores = scores - scores.max(axis=1, keepdims=True)
        e = np.exp(scores)
        return e / e.sum(axis=1, keepdims=True)


def multinomial_logreg(X, labels, runtime: MLRuntime | None = None,
                       lam: float = 1.0, max_newton: int = 20,
                       max_cg: int = 30, grad_tol: float = 1e-4,
                       block: bool = False) -> MultinomialResult:
    """Fit a K-class classifier; labels may be any hashable class ids.

    ``block=False`` (default): each class fits a binomial trust-region
    LogReg against the rest on the shared runtime, so the ledger aggregates
    all K classes' pattern calls.

    ``block=True``: all K one-vs-rest Newton systems advance in *lockstep*,
    with every CG step's K Hessian-vector products issued as one multi-RHS
    fused kernel (``X`` read once for all classes) — the block formulation
    the multi-RHS kernel exists for.
    """
    rt = runtime or MLRuntime()
    m, n = X.shape
    labels = np.asarray(labels)
    if labels.shape != (m,):
        raise ValueError(f"labels must have shape ({m},)")
    classes = np.unique(labels)
    if classes.size < 2:
        raise ValueError("need at least two classes")

    if block:
        return _block_fit(X, labels, classes, rt, lam, max_newton, max_cg,
                          grad_tol)

    W = np.zeros((n, classes.size), dtype=np.float64)
    newton = cg = 0
    for k, cls in enumerate(classes):
        t = np.where(labels == cls, 1.0, -1.0)
        res = logreg_trust_region(X, t, rt, lam=lam, max_newton=max_newton,
                                  max_cg=max_cg, grad_tol=grad_tol)
        W[:, k] = res.w
        newton += res.iterations
        cg += res.cg_iterations
    return MultinomialResult(W=W, classes=classes,
                             newton_iterations=newton, cg_iterations=cg,
                             total_time_ms=rt.ledger.total_ms)


def _sigmoid(u: np.ndarray) -> np.ndarray:
    out = np.empty_like(u)
    pos = u >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-u[pos]))
    e = np.exp(u[~pos])
    out[~pos] = e / (1.0 + e)
    return out


def _block_fit(X, labels, classes, rt: MLRuntime, lam: float,
               max_newton: int, max_cg: int,
               grad_tol: float) -> MultinomialResult:
    """Lockstep damped-Newton over all one-vs-rest systems at once.

    Uses plain Newton steps (no trust region: the K radii would desync the
    lockstep) with a shared halving line search per class; Hessian-vector
    products for all still-active classes run as one multi-RHS pattern.
    """
    from ..sparse.ops import spmm

    m, n = X.shape
    K = classes.size
    T = np.where(labels[:, None] == classes[None, :], 1.0, -1.0)  # (m, K)
    W = np.zeros((n, K), dtype=np.float64)
    newton = total_cg = 0
    for newton in range(1, max_newton + 1):
        U = spmm(X, W)                                # decision values
        rt.ledger.charge("mv", 0.0)                   # host-side panel math
        sigma = _sigmoid(T * U)
        G = np.empty((n, K))
        for k in range(K):                            # gradients, one XT_Y
            G[:, k] = rt.xt_mv(X, (sigma[:, k] - 1.0) * T[:, k]) \
                + lam * W[:, k]
        gnorm = np.sqrt((G * G).sum(axis=0))
        active = gnorm > grad_tol
        if not active.any():
            break
        D = sigma * (1.0 - sigma)                     # per-class weights

        # ---- lockstep CG on the active classes -----------------------------
        S = np.zeros((n, K))
        R = -G.copy()
        P = R.copy()
        rr = (R * R).sum(axis=0)
        live = active.copy()
        for _ in range(max_cg):
            if not live.any():
                break
            total_cg += 1
            idx = np.flatnonzero(live)
            HP = np.zeros((n, K))
            HP[:, idx] = rt.pattern_multi(X, P[:, idx], V=D[:, idx],
                                          Z=P[:, idx], beta=lam)
            pHp = np.einsum("ij,ij->j", P[:, idx], HP[:, idx])
            a = np.where(pHp > 0, rr[idx] / np.maximum(pHp, 1e-300), 0.0)
            S[:, idx] += a * P[:, idx]
            R[:, idx] -= a * HP[:, idx]
            rr_new = (R[:, idx] * R[:, idx]).sum(axis=0)
            conv = rr_new <= 1e-10 * rr[idx]
            P[:, idx] = R[:, idx] + (rr_new / np.maximum(rr[idx], 1e-300)) \
                * P[:, idx]
            rr[idx] = rr_new
            live[idx[conv | (pHp <= 0)]] = False

        # ---- per-class halving line search on the logistic loss ------------
        for k in np.flatnonzero(active):
            def loss(w):
                u = X @ w if not hasattr(X, "row_off") else None
                from ..sparse.ops import spmv
                u = spmv(X, w) if hasattr(X, "row_off") else u
                return float(np.logaddexp(0.0, -T[:, k] * u).sum()
                             + 0.5 * lam * w @ w)
            f0 = loss(W[:, k])
            step = 1.0
            for _ in range(20):
                if loss(W[:, k] + step * S[:, k]) <= f0:
                    break
                step *= 0.5
            W[:, k] += step * S[:, k]

    return MultinomialResult(W=W, classes=classes,
                             newton_iterations=newton,
                             cg_iterations=total_cg,
                             total_time_ms=rt.ledger.total_ms)
