"""Linear regression via conjugate gradient — Listing 1 of the paper.

The CG loop's hot statement is ``q = t(V) %*% (V %*% p) + eps * p``, the
``X^T x (X x y) + beta * z`` instantiation of the generic pattern; the
surrounding updates are BLAS-1.  Run under different
:class:`~repro.ml.runtime.MLRuntime` backends, this is the workload of
Tables 2, 5, and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runtime import MLRuntime


@dataclass
class LinRegResult:
    """Fitted weights plus convergence and timing metadata."""

    w: np.ndarray
    iterations: int
    residual_norm_sq: float
    initial_norm_sq: float
    total_time_ms: float

    @property
    def converged(self) -> bool:
        return self.residual_norm_sq <= self.initial_norm_sq * 1e-12


def linreg_cg(X, y, runtime: MLRuntime | None = None,
              eps: float = 0.001, tolerance: float = 1e-6,
              max_iterations: int = 100,
              include_transfer: bool = True) -> LinRegResult:
    """Solve ``(X^T X + eps I) w = X^T y`` by CG (Listing 1, line for line).

    ``y`` is the m-vector of targets.  ``include_transfer`` charges the
    one-time host-to-device upload of ``X`` (Table 5's protocol).
    """
    rt = runtime or MLRuntime()
    m, n = X.shape
    if np.asarray(y).shape != (m,):
        raise ValueError(f"y must have shape ({m},)")

    if include_transfer:
        rt.upload(X)
        rt.upload(np.asarray(y))

    r = rt.xt_mv(X, np.asarray(y, dtype=np.float64), alpha=-1.0)  # line 3
    p = rt.scal(-1.0, r)                                          # line 4
    nr2 = rt.sumsq(r)                                             # line 5
    nr2_init = nr2
    nr2_target = nr2 * tolerance ** 2                             # line 6
    w = np.zeros(n, dtype=np.float64)                             # line 7
    i = 0
    while i < max_iterations and nr2 > nr2_target:                # line 9
        q = rt.pattern(X, p, z=p, beta=eps)                       # line 10
        alpha = nr2 / rt.dot(p, q)                                # line 12
        w = rt.axpy(alpha, p, w)                                  # line 13
        old_nr2 = nr2
        r = rt.axpy(alpha, q, r)                                  # line 15
        nr2 = rt.sumsq(r)                                         # line 16
        beta = nr2 / old_nr2                                      # line 17
        p = rt.axpy(beta, p, -r)                                  # line 18
        i += 1

    if include_transfer:
        rt.download(w)
    return LinRegResult(w=w, iterations=i, residual_norm_sq=nr2,
                        initial_norm_sq=nr2_init,
                        total_time_ms=rt.ledger.total_ms)
