"""HITS (Hubs and Authorities, Kleinberg 1999) by power iteration.

With adjacency ``X``, authority scores satisfy ``a ∝ X^T X a`` — the
``X^T x (X x y)`` instantiation executed once per iteration (Table 1's HITS
column), with hub scores recovered as ``h = X a``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runtime import MLRuntime


@dataclass
class HitsResult:
    authorities: np.ndarray
    hubs: np.ndarray
    iterations: int
    delta: float
    total_time_ms: float

    @property
    def converged(self) -> bool:
        return self.delta <= 1e-9

    def top_authorities(self, k: int = 10) -> np.ndarray:
        return np.argsort(-self.authorities)[:k]

    def top_hubs(self, k: int = 10) -> np.ndarray:
        return np.argsort(-self.hubs)[:k]


def hits(X, runtime: MLRuntime | None = None, max_iterations: int = 100,
         tol: float = 1e-9, include_transfer: bool = False,
         mode: str = "fused") -> HitsResult:
    """HITS power iteration with L2 normalization each step.

    ``mode="fused"`` advances authorities directly through the
    ``X^T x (X x y)`` pattern (one fused kernel per iteration);
    ``mode="alternating"`` is the textbook formulation — ``h = X a`` then
    ``a = X^T h`` — whose second half is Table 1's ``alpha * X^T x y`` row.
    Both converge to the same leading eigenvector of ``X^T X``.
    """
    if mode not in ("fused", "alternating"):
        raise ValueError("mode must be 'fused' or 'alternating'")
    rt = runtime or MLRuntime()
    m, n = X.shape
    if include_transfer:
        rt.upload(X)
    a = np.full(n, 1.0 / np.sqrt(n), dtype=np.float64)
    delta = np.inf
    it = 0
    for it in range(1, max_iterations + 1):
        if mode == "fused":
            a_new = rt.pattern(X, a)          # X^T (X a)
        else:
            h_it = rt.mv(X, a)                # hub update
            a_new = rt.xt_mv(X, h_it)         # authority update (X^T x h)
        norm = rt.nrm2(a_new)
        if norm == 0.0:
            a_new = a
            delta = 0.0
            break
        a_new = rt.scal(1.0 / norm, a_new)
        diff = a_new - a
        delta = float(np.sqrt(diff @ diff))
        a = a_new
        if delta <= tol:
            break
    h = rt.mv(X, a)
    hn = float(np.sqrt(h @ h))
    if hn > 0:
        h = h / hn
    if include_transfer:
        rt.download(a)
        rt.download(h)
    return HitsResult(authorities=a, hubs=h, iterations=it, delta=delta,
                      total_time_ms=rt.ledger.total_ms)
