"""Binomial logistic regression via trust-region Newton (Lin, Weng, Keerthi).

The paper lists LogReg among the algorithms dominated by the generic
pattern: the gradient is ``X^T x (sigma - t)`` (the ``alpha * X^T x y`` row of
Table 1) and every Hessian-vector product inside the CG subproblem is

    ``H s = X^T x (D ⊙ (X x s)) + lambda * s``,

the *complete* pattern with ``v = D = sigma(1-sigma)``, ``beta = lambda`` and
``z = s`` — Table 1's LogReg column checks the ``FULL`` and ``XT_V_X_Y`` rows
through exactly this code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runtime import MLRuntime


def _sigmoid(u: np.ndarray) -> np.ndarray:
    out = np.empty_like(u)
    pos = u >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-u[pos]))
    eu = np.exp(u[~pos])
    out[~pos] = eu / (1.0 + eu)
    return out


@dataclass
class LogRegResult:
    w: np.ndarray
    iterations: int
    cg_iterations: int
    final_loss: float
    grad_norm: float
    total_time_ms: float


def _loss(X, w, t, lam, rt: MLRuntime) -> float:
    u = rt.mv(X, w)
    # numerically stable log(1 + exp(-t*u))
    margins = t * u
    loss = float(np.logaddexp(0.0, -margins).sum())
    return loss + 0.5 * lam * float(w @ w)


def logreg_trust_region(X, labels, runtime: MLRuntime | None = None,
                        lam: float = 1.0, max_newton: int = 20,
                        max_cg: int = 30, grad_tol: float = 1e-4,
                        include_transfer: bool = False) -> LogRegResult:
    """Fit P(y=1|x) = sigma(w.x) with labels in {-1, +1}.

    Trust-region Newton: each outer step solves the Newton system
    approximately by CG (Steihaug truncation at the trust radius), accepts or
    rejects by the actual-vs-predicted reduction ratio, and adapts the radius.
    """
    rt = runtime or MLRuntime()
    m, n = X.shape
    t = np.asarray(labels, dtype=np.float64)
    if t.shape != (m,):
        raise ValueError(f"labels must have shape ({m},)")
    if not np.all(np.isin(t, (-1.0, 1.0))):
        raise ValueError("labels must be -1/+1")

    if include_transfer:
        rt.upload(X)

    w = np.zeros(n, dtype=np.float64)
    delta = 1.0
    total_cg = 0
    f = _loss(X, w, t, lam, rt)
    grad_norm = np.inf
    it = 0
    for it in range(1, max_newton + 1):
        u = rt.mv(X, w)
        sigma = _sigmoid(t * u)
        # gradient: X^T ((sigma-1) * t) + lam w   (Table-1 row: alpha X^T y)
        g = rt.xt_mv(X, (sigma - 1.0) * t) + lam * w
        grad_norm = float(np.sqrt(g @ g))
        if grad_norm <= grad_tol:
            break
        D = sigma * (1.0 - sigma)

        # --- CG-Steihaug on H s = -g, H = X^T D X + lam I ------------------
        s = np.zeros(n)
        r = -g.copy()
        d = r.copy()
        rr = float(r @ r)
        for _ in range(max_cg):
            total_cg += 1
            Hd = rt.pattern(X, d, v=D, z=d, beta=lam)       # FULL pattern
            dHd = rt.dot(d, Hd)
            if dHd <= 0:
                break
            a = rr / dHd
            if float(np.linalg.norm(s + a * d)) >= delta:
                # hit the trust boundary: walk to it and stop
                sd = float(s @ d)
                dd = float(d @ d)
                disc = sd * sd + dd * (delta * delta - float(s @ s))
                tau = (-sd + np.sqrt(max(0.0, disc))) / dd
                s = s + tau * d
                break
            s = rt.axpy(a, d, s)
            r = rt.axpy(-a, Hd, r)
            rr_new = rt.sumsq(r)
            if rr_new <= 1e-10 * rr:
                break
            d = rt.axpy(rr_new / rr, d, r)
            rr = rr_new

        # --- accept / reject by reduction ratio ----------------------------
        f_new = _loss(X, w + s, t, lam, rt)
        pred = -float(g @ s) - 0.5 * float(
            s @ rt.pattern(X, s, v=D, z=s, beta=lam))
        actual = f - f_new
        rho = actual / pred if pred > 0 else -1.0
        if rho > 0.25:
            w = w + s
            f = f_new
            if rho > 0.75:
                delta = min(4.0 * delta, 1e6)
        else:
            delta = max(0.25 * delta, 1e-6)

    if include_transfer:
        rt.download(w)
    return LogRegResult(w=w, iterations=it, cg_iterations=total_cg,
                        final_loss=f, grad_norm=grad_norm,
                        total_time_ms=rt.ledger.total_ms)
