"""Linear SVM trained in the primal (Chapelle, 2007).

Squared-hinge loss ``lam/2 ||w||^2 + sum_i max(0, 1 - t_i w.x_i)^2`` is
piecewise quadratic; Newton steps restricted to the active set (margin
violators) have Hessian ``lam I + 2 X^T diag(sv) X`` — a generic-pattern
Hessian-vector product with ``v`` the support-vector indicator, covering
Table 1's SVM rows (``alpha X^T y``, ``X^T X y``, ``X^T X y + beta z``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runtime import MLRuntime


@dataclass
class SvmResult:
    w: np.ndarray
    iterations: int
    cg_iterations: int
    n_support: int
    objective: float
    total_time_ms: float


def _objective(u: np.ndarray, t: np.ndarray, w: np.ndarray,
               lam: float) -> float:
    margin = 1.0 - t * u
    viol = np.maximum(margin, 0.0)
    return 0.5 * lam * float(w @ w) + float(viol @ viol)


def svm_primal(X, labels, runtime: MLRuntime | None = None,
               lam: float = 1.0, max_newton: int = 30, max_cg: int = 50,
               tol: float = 1e-6,
               include_transfer: bool = False) -> SvmResult:
    """Primal Newton SVM with CG-solved steps over the active set."""
    rt = runtime or MLRuntime()
    m, n = X.shape
    t = np.asarray(labels, dtype=np.float64)
    if t.shape != (m,):
        raise ValueError(f"labels must have shape ({m},)")
    if not np.all(np.isin(t, (-1.0, 1.0))):
        raise ValueError("labels must be -1/+1")
    if include_transfer:
        rt.upload(X)

    w = np.zeros(n, dtype=np.float64)
    total_cg = 0
    it = 0
    sv = np.ones(m, dtype=np.float64)
    for it in range(1, max_newton + 1):
        u = rt.mv(X, w)
        margin = 1.0 - t * u
        sv = (margin > 0).astype(np.float64)
        # gradient: lam w - 2 X^T (sv * t * margin)
        g = rt.xt_mv(X, sv * t * margin, alpha=-2.0)
        g = rt.axpy(lam, w, g)
        gnorm = float(np.sqrt(g @ g))
        if gnorm <= tol:
            break

        # CG on (lam I + 2 X^T diag(sv) X) d = -g; when every point violates
        # the margin (e.g. the first Newton step from w = 0) the indicator is
        # all-ones and the Hessian-vector product degenerates to the
        # ``X^T (X y) + beta z`` instantiation (Table 1's SVM column)
        sv_arg = None if bool(sv.all()) else sv
        d = np.zeros(n)
        r = -g
        pdir = r.copy()
        rr = float(r @ r)
        for _ in range(max_cg):
            total_cg += 1
            Hp = rt.pattern(X, pdir, v=sv_arg, z=pdir, alpha=2.0, beta=lam)
            a = rr / max(rt.dot(pdir, Hp), 1e-300)
            d = rt.axpy(a, pdir, d)
            r = rt.axpy(-a, Hp, r)
            rr_new = rt.sumsq(r)
            if rr_new <= 1e-10 * rr:
                break
            pdir = rt.axpy(rr_new / rr, pdir, r)
            rr = rr_new

        # line search on the piecewise-quadratic objective (backtracking)
        f0 = _objective(u, t, w, lam)
        step = 1.0
        for _ in range(20):
            w_try = w + step * d
            if _objective(rt.mv(X, w_try), t, w_try, lam) <= f0:
                break
            step *= 0.5
        w = w + step * d
        if step * float(np.sqrt(d @ d)) <= tol * max(1.0,
                                                     float(np.sqrt(w @ w))):
            break

    u = rt.mv(X, w)
    obj = _objective(u, t, w, lam)
    if include_transfer:
        rt.download(w)
    return SvmResult(w=w, iterations=it, cg_iterations=total_cg,
                     n_support=int(sv.sum()), objective=obj,
                     total_time_ms=rt.ledger.total_ms)
