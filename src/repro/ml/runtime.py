"""Backend abstraction and time ledger for the ML algorithms.

An :class:`MLRuntime` exposes the operations Listing 1-style scripts need —
the generic pattern, SpMV/GEMV, and BLAS-1 — computes them numerically, and
charges model time to a ledger under one of three backends:

* ``cpu`` — single-threaded or multi-threaded host execution (roofline);
* ``gpu-baseline`` — operator-level cuSPARSE/cuBLAS kernel launches;
* ``gpu-fused`` — the paper's fused kernel for every pattern occurrence,
  library kernels elsewhere.

The ledger tracks time by category (``pattern`` vs ``blas1`` vs ``mv`` vs
``transfer``), which is exactly the breakdown Tables 2, 5 and 6 report, and
records every pattern instantiation encountered (Table 1 coverage).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..core.executor import PatternExecutor
from ..core.pattern import GenericPattern, Instantiation
from ..gpu.cpu import CpuCostModel
from ..gpu.transfer import TransferModel
from ..kernels import blas1
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..kernels.dense_baseline import gemv_n
from ..kernels.sparse_baseline import csrmv
from ..sparse.csr import CsrMatrix
from ..sparse.ops import spmv

_D = 8
_I = 4

BACKENDS = ("cpu", "gpu-baseline", "gpu-fused")

#: how expression DAGs are fused: cost-based optimizer, hand-written
#: pattern rewriter (the default, matching prior behaviour), or not at all
FUSE_MODES = ("auto", "pattern", "off")


@dataclass
class TimeLedger:
    """Accumulated model time by category, plus pattern-usage traces."""

    by_category: dict[str, float] = field(
        default_factory=lambda: defaultdict(float))
    instantiations: Counter = field(default_factory=Counter)
    op_counts: Counter = field(default_factory=Counter)

    def charge(self, category: str, ms: float) -> None:
        self.by_category[category] += ms
        self.op_counts[category] += 1

    @property
    def total_ms(self) -> float:
        return sum(self.by_category.values())

    def fraction(self, category: str) -> float:
        t = self.total_ms
        return self.by_category.get(category, 0.0) / t if t else 0.0

    def compute_fraction(self, category: str) -> float:
        """Share of *compute* time (transfer excluded), as in Table 2."""
        t = sum(v for k, v in self.by_category.items() if k != "transfer")
        return self.by_category.get(category, 0.0) / t if t else 0.0

    def reset(self) -> None:
        self.by_category.clear()
        self.instantiations.clear()
        self.op_counts.clear()


class MLRuntime:
    """Executes ML-algorithm operations under a chosen backend.

    GPU backends route every pattern statement through a
    :class:`~repro.core.engine.PatternEngine` session, so iterative
    algorithms (LR-CG, GLM, HITS) pay plan selection and §3.3 tuning once
    per matrix instead of once per call.  Pass ``engine`` to share a session
    across runtimes, and ``strategy`` to pin a specific execution plan
    (e.g. ``"cusparse-explicit"`` to study Fig. 2's transpose amortization).
    """

    def __init__(self, backend: str = "gpu-fused",
                 ctx: GpuContext | None = None,
                 cpu_threads: int | None = None,
                 engine: "PatternEngine | None" = None,
                 strategy: str | None = None,
                 fuse: str = "pattern"):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if fuse not in FUSE_MODES:
            raise ValueError(f"fuse must be one of {FUSE_MODES}")
        self.backend = backend
        self.ctx = ctx or DEFAULT_CONTEXT
        self.cpu = CpuCostModel(threads=cpu_threads)
        self.transfer = TransferModel(self.ctx.device)
        self.executor = PatternExecutor(self.ctx)
        self.strategy = strategy
        self.fuse = fuse
        if engine is None and self.on_gpu:
            from ..core.engine import PatternEngine
            engine = PatternEngine(self.ctx)
        self.engine = engine
        self.ledger = TimeLedger()

    # ------------------------------------------------------------ helpers --
    @property
    def on_gpu(self) -> bool:
        return self.backend.startswith("gpu")

    def _nbytes(self, X) -> float:
        if isinstance(X, CsrMatrix):
            return float(X.nbytes())
        return float(np.asarray(X).size * _D)

    # ------------------------------------------------------------ transfer --
    def upload(self, X) -> None:
        """Charge the host-to-device transfer of an operand (Table 5).

        Uploading also pins the operand on the engine: device-resident data
        is immutable from the host's point of view, so the engine memoizes
        its fingerprint and serves compiled kernels without re-hashing.
        """
        if self.on_gpu:
            self.ledger.charge("transfer",
                               self.transfer.h2d_ms(self._nbytes(X)))
            if isinstance(X, CsrMatrix) or (
                    isinstance(X, np.ndarray) and X.ndim == 2):
                self.engine.pin(X)   # vectors stay mutable (CG updates them)

    def download(self, x) -> None:
        if self.on_gpu:
            self.ledger.charge("transfer",
                               self.transfer.d2h_ms(self._nbytes(x)))

    # ------------------------------------------------------------- pattern --
    def _gpu_strategy(self, default_fused: str = "auto") -> str:
        if self.strategy is not None:
            return self.strategy
        return "cusparse" if self.backend == "gpu-baseline" else default_fused

    def pattern(self, X, y, v=None, z=None, alpha: float = 1.0,
                beta: float = 0.0) -> np.ndarray:
        """Eq. 1 under the backend's strategy; the hot op of every algorithm."""
        p = GenericPattern(X, y, v=v, z=z, alpha=alpha, beta=beta)
        self.ledger.instantiations[p.classify()] += 1
        if self.backend == "cpu":
            from ..core.plans import BidmatCpuPlan
            res = BidmatCpuPlan(self.cpu).evaluate(p)
        else:
            res = self.engine.evaluate_pattern(p, self._gpu_strategy())
        self.ledger.charge("pattern", res.time_ms)
        return res.output

    def pattern_multi(self, X, Y, V=None, Z=None, alpha: float = 1.0,
                      beta: float = 0.0) -> np.ndarray:
        """Eq. 1 over k right-hand sides; the fused backend shares the X
        pass (one multi-RHS kernel), the others run k separate chains."""
        from ..core.pattern import classify
        Y = np.asarray(Y, dtype=np.float64)
        k = Y.shape[1]
        sample = GenericPattern(
            X, Y[:, 0], v=None if V is None else V[:, 0],
            z=None if Z is None else Z[:, 0], alpha=alpha, beta=beta)
        self.ledger.instantiations[classify(sample)] += k
        if self.backend == "gpu-fused" and isinstance(X, CsrMatrix):
            from ..kernels.sparse_multi import fused_pattern_multi
            res = fused_pattern_multi(X, Y, V, Z, alpha, beta, ctx=self.ctx)
            self.ledger.charge("pattern", res.time_ms)
            return res.output
        out = np.empty((X.shape[1], k), dtype=np.float64)
        for j in range(k):
            p = GenericPattern(
                X, Y[:, j], v=None if V is None else V[:, j],
                z=None if Z is None else Z[:, j], alpha=alpha, beta=beta)
            if self.backend == "cpu":
                from ..core.plans import BidmatCpuPlan
                res = BidmatCpuPlan(self.cpu).evaluate(p)
            else:
                res = self.engine.evaluate_pattern(p, self._gpu_strategy())
            self.ledger.charge("pattern", res.time_ms)
            out[:, j] = res.output
        return out

    def xt_mv(self, X, y, alpha: float = 1.0) -> np.ndarray:
        """``alpha * X^T x y`` (y of length m) — also a Table-1 pattern."""
        p = GenericPattern(X, y, alpha=alpha, inner=False)
        self.ledger.instantiations[Instantiation.XT_Y] += 1
        if self.backend == "cpu":
            from ..core.plans import BidmatCpuPlan
            res = BidmatCpuPlan(self.cpu).evaluate(p)
        else:
            res = self.engine.evaluate_pattern(
                p, self._gpu_strategy(default_fused="fused"))
        self.ledger.charge("pattern", res.time_ms)
        return res.output

    # -------------------------------------------------------- expressions --
    def run_expression(self, expr, env: dict) -> np.ndarray:
        """Evaluate a DML expression (string or DAG) under ``fuse`` mode.

        * ``"off"`` — unfused: one kernel per DAG operator;
        * ``"pattern"`` — the hand-written Eq.-1 rewriter, then kernels;
        * ``"auto"`` — the cost-based fusion-plan optimizer
          (:mod:`repro.systemml.fusion`), plan-cached in the engine.

        All three modes are bit-identical for sparse matrices; model time
        is charged to the ledger per launched kernel.
        """
        from ..systemml.fusion import clone_dag, evaluate_dag
        from ..systemml.parser import parse_expression

        root = parse_expression(expr) if isinstance(expr, str) else expr
        if self.backend == "cpu":
            return np.asarray(root.eval(env))
        if self.fuse == "auto" and self.engine is not None:
            plan = self.engine.fusion_plan(
                root, env,
                expression=expr if isinstance(expr, str) else "")
            root = plan.lowered()
        elif self.fuse == "pattern":
            from ..systemml.rewriter import rewrite
            root = rewrite(clone_dag(root))
        return evaluate_dag(root, env, self.ctx, engine=self.engine,
                            ledger=self.ledger)

    # ------------------------------------------------------------------ mv --
    def mv(self, X, y) -> np.ndarray:
        """Plain ``X x y`` (cuSPARSE/cuBLAS are already optimal here)."""
        if self.backend == "cpu":
            m, n = X.shape
            if isinstance(X, CsrMatrix):
                ms = self.cpu.time_ms(X.nnz * (_D + _I) + m * _D,
                                      2 * X.nnz, 0.05)
                out = spmv(X, y)
            else:
                ms = self.cpu.time_ms(m * n * _D, 2 * m * n)
                out = np.asarray(X) @ y
            self.ledger.charge("mv", ms)
            return out
        res = csrmv(X, y, self.ctx) if isinstance(X, CsrMatrix) \
            else gemv_n(np.asarray(X, dtype=np.float64), y, self.ctx)
        self.ledger.charge("mv", res.time_ms)
        return res.output

    # --------------------------------------------------------------- BLAS-1 --
    def _l1(self, name: str, gpu_fn, cpu_bytes: float, cpu_flops: float,
            value):
        if self.backend == "cpu":
            self.ledger.charge("blas1",
                               self.cpu.time_ms(cpu_bytes, cpu_flops))
            return value
        res = gpu_fn()
        self.ledger.charge("blas1", res.time_ms)
        return res.output

    def axpy(self, a: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self._l1("axpy", lambda: blas1.axpy(a, x, y, self.ctx),
                        3 * x.size * _D, 2 * x.size, a * x + y)

    def scal(self, a: float, x: np.ndarray) -> np.ndarray:
        return self._l1("scal", lambda: blas1.scal(a, x, self.ctx),
                        2 * x.size * _D, x.size, a * x)

    def ewmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self._l1("ewmul", lambda: blas1.ewmul(x, y, self.ctx),
                        3 * x.size * _D, x.size, x * y)

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        return self._l1("dot", lambda: blas1.dot(x, y, self.ctx),
                        2 * x.size * _D, 2 * x.size, float(x @ y))

    def sumsq(self, x: np.ndarray) -> float:
        return self._l1("sumsq", lambda: blas1.sumsq(x, self.ctx),
                        x.size * _D, 2 * x.size, float(x @ x))

    def nrm2(self, x: np.ndarray) -> float:
        return self._l1("nrm2", lambda: blas1.nrm2(x, self.ctx),
                        x.size * _D, 2 * x.size, float(np.sqrt(x @ x)))
