"""Generalized linear models via iteratively reweighted least squares.

Each IRLS step solves the weighted normal equations
``(X^T W X + lam I) d = X^T (W ⊙ r_work)`` by CG; the Hessian-vector product
is the ``X^T x (v ⊙ (X x y))`` instantiation (Table 1's GLM column) with
``v`` the IRLS working weights.  Supported families: ``gaussian`` (identity
link), ``poisson`` (log link), ``binomial`` (logit link).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .runtime import MLRuntime

FAMILIES = ("gaussian", "poisson", "binomial")


def _link_quantities(family: str, eta: np.ndarray, target: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Return (working weights W, working residual r = y - mu scaled)."""
    if family == "gaussian":
        mu = eta
        return np.ones_like(eta), target - mu
    if family == "poisson":
        mu = np.exp(np.clip(eta, -30, 30))
        return mu, target - mu
    if family == "binomial":
        mu = 1.0 / (1.0 + np.exp(-np.clip(eta, -30, 30)))
        return mu * (1.0 - mu), target - mu
    raise ValueError(f"family must be one of {FAMILIES}")


@dataclass
class GlmResult:
    w: np.ndarray
    iterations: int
    cg_iterations: int
    deviance_proxy: float
    total_time_ms: float


def glm_irls(X, target, family: str = "poisson",
             runtime: MLRuntime | None = None, lam: float = 0.0,
             max_irls: int = 25, max_cg: int = 50, tol: float = 1e-8,
             include_transfer: bool = False) -> GlmResult:
    """Fit a GLM by IRLS with CG-solved weighted least squares steps.

    With ``lam = 0`` (the default) each Hessian-vector product is the pure
    ``X^T x (v ⊙ (X x y))`` instantiation of Table 1's GLM column; the
    Gaussian family's unit weights degenerate it further to ``X^T (X y)``.
    """
    rt = runtime or MLRuntime()
    m, n = X.shape
    t = np.asarray(target, dtype=np.float64)
    if t.shape != (m,):
        raise ValueError(f"target must have shape ({m},)")
    if family not in FAMILIES:
        raise ValueError(f"family must be one of {FAMILIES}")
    if include_transfer:
        rt.upload(X)

    w = np.zeros(n, dtype=np.float64)
    total_cg = 0
    it = 0
    resid_sq = np.inf
    for it in range(1, max_irls + 1):
        eta = rt.mv(X, w)
        W, r_work = _link_quantities(family, eta, t)
        g = rt.xt_mv(X, r_work)                 # rhs: X^T (y - mu)
        if lam:
            g = rt.axpy(-lam, w, g)
        resid_sq = float(g @ g)
        if resid_sq <= tol:
            break

        # CG on (X^T W X + lam I) d = g  -- pattern with v = W; the Gaussian
        # family's W = 1 drops the element-wise multiply entirely
        v_arg = None if family == "gaussian" else W
        z_arg, beta_arg = (pdir, lam) if lam else (None, 0.0)
        d = np.zeros(n)
        r = g.copy()
        pdir = r.copy()
        rr = float(r @ r)
        for _ in range(max_cg):
            total_cg += 1
            z_arg = pdir if lam else None
            Hp = rt.pattern(X, pdir, v=v_arg, z=z_arg, beta=beta_arg)
            a = rr / max(rt.dot(pdir, Hp), 1e-300)
            d = rt.axpy(a, pdir, d)
            r = rt.axpy(-a, Hp, r)
            rr_new = rt.sumsq(r)
            if rr_new <= 1e-12 * rr or rr_new <= 1e-14:
                break
            pdir = rt.axpy(rr_new / rr, pdir, r)
            rr = rr_new
        w = w + d
        if float(d @ d) <= 1e-18 * max(1.0, float(w @ w)):
            break

    if include_transfer:
        rt.download(w)
    return GlmResult(w=w, iterations=it, cg_iterations=total_cg,
                     deviance_proxy=resid_sq, total_time_ms=rt.ledger.total_ms)
