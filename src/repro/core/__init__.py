"""The paper's contribution: the generic pattern, fused plans, and executor."""

from .api import evaluate, mvtmv, pattern_of, xt_mv
from .engine import (BatchResult, EngineStats, PatternEngine, PatternRequest,
                     fingerprint_matrix)
from .executor import STRATEGIES, PatternExecutor
from .hybrid import HybridExecutor, HybridReport
from .streaming import StreamingExecutor, StreamingReport, plan_blocks
from .pattern import TABLE1, GenericPattern, Instantiation, algorithms_using, \
    classify
from .plans import (BidmatCpuPlan, BidmatGpuPlan, CusparsePlan,
                    ExplicitTransposePlan, FusedPlan, Plan)

__all__ = [
    "evaluate", "mvtmv", "pattern_of", "xt_mv",
    "BatchResult", "EngineStats", "PatternEngine", "PatternRequest",
    "fingerprint_matrix",
    "STRATEGIES", "PatternExecutor",
    "HybridExecutor", "HybridReport",
    "StreamingExecutor", "StreamingReport", "plan_blocks",
    "TABLE1", "GenericPattern", "Instantiation", "algorithms_using",
    "classify",
    "BidmatCpuPlan", "BidmatGpuPlan", "CusparsePlan",
    "ExplicitTransposePlan", "FusedPlan", "Plan",
]
