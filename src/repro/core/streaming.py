"""Out-of-core streaming execution of the generic pattern.

The paper assumes X fits in device memory but notes the methods "can easily
be adapted to a streaming design for out-of-core computation" (§3).  This
module is that adaptation: X is split into row blocks sized to a device
budget, each block is shipped over PCIe into one of two staging buffers
(double buffering), and the fused kernel runs on block *i* while block
*i + 1* transfers — so steady-state time is ``max(kernel, transfer)`` per
block instead of their sum.

The decomposition is exact because the pattern is additive over row blocks::

    X^T (v ⊙ (X y)) = sum_b  X_b^T (v_b ⊙ (X_b y))

with ``beta * z`` added once at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.transfer import TransferModel
from ..kernels.base import DEFAULT_CONTEXT, GpuContext, KernelResult
from ..sparse.csr import CsrMatrix
from .pattern import GenericPattern
from .plans import FusedPlan

_D = 8


@dataclass
class StreamingReport:
    """Timing decomposition of one streamed evaluation."""

    blocks: int
    kernel_ms: float
    transfer_ms: float
    overlapped_ms: float           # the actual critical-path time
    output: np.ndarray = field(repr=False, default=None)

    @property
    def overlap_efficiency(self) -> float:
        """1.0 = perfect overlap (critical path equals the dominant stream)."""
        serial = self.kernel_ms + self.transfer_ms
        if serial == 0:
            return 1.0
        return (serial - self.overlapped_ms) / min(self.kernel_ms,
                                                   self.transfer_ms) \
            if min(self.kernel_ms, self.transfer_ms) > 0 else 1.0


def _block_bytes(X, start: int, end: int) -> float:
    if isinstance(X, CsrMatrix):
        sub = X.row_block(start, end)
        return float(sub.nbytes())
    return float((end - start) * X.shape[1] * _D)


def plan_blocks(X, budget_bytes: float) -> list[tuple[int, int]]:
    """Split rows into contiguous blocks each fitting the staging budget."""
    m = X.shape[0]
    if budget_bytes <= 0:
        raise ValueError("budget must be positive")
    blocks: list[tuple[int, int]] = []
    start = 0
    while start < m:
        lo, hi = start + 1, m
        # largest end with block bytes <= budget (rows are monotone in size)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if _block_bytes(X, start, mid) <= budget_bytes:
                lo = mid
            else:
                hi = mid - 1
        end = max(lo, start + 1)           # always make progress
        blocks.append((start, end))
        start = end
    return blocks


@dataclass
class StreamingExecutor:
    """Evaluates the pattern over row blocks with double-buffered transfers."""

    ctx: GpuContext = field(default_factory=lambda: DEFAULT_CONTEXT)
    #: staging budget per buffer; default: 40% of device memory (two buffers
    #: plus workspace must coexist)
    budget_bytes: float | None = None

    def __post_init__(self) -> None:
        self.transfer = TransferModel(self.ctx.device)
        self._plan = FusedPlan(self.ctx)
        if self.budget_bytes is None:
            self.budget_bytes = 0.4 * self.ctx.device.global_memory_bytes

    def evaluate(self, p: GenericPattern) -> StreamingReport:
        if not p.inner:
            raise ValueError("streaming executor handles inner patterns "
                             "(X^T y streams the same way via Algorithm 1)")
        m, n = p.shape
        blocks = plan_blocks(p.X, self.budget_bytes)

        w = np.zeros(n, dtype=np.float64)
        kernel_times: list[float] = []
        transfer_times: list[float] = []
        for (start, end) in blocks:
            if isinstance(p.X, CsrMatrix):
                Xb = p.X.row_block(start, end)
            else:
                Xb = np.asarray(p.X, dtype=np.float64)[start:end]
            vb = None if p.v is None else p.v[start:end]
            sub = GenericPattern(Xb, p.y, v=vb, alpha=1.0, beta=0.0)
            res: KernelResult = self._plan.evaluate(sub)
            w += res.output
            kernel_times.append(res.time_ms)
            transfer_times.append(
                self.transfer.pcie_ms(_block_bytes(p.X, start, end)))

        w *= p.alpha
        if p.beta != 0.0:
            w += p.beta * p.z

        # double-buffered pipeline: first transfer exposed, then each step
        # costs max(kernel_i, transfer_{i+1}), then the last kernel
        overlapped = transfer_times[0]
        for i in range(len(blocks) - 1):
            overlapped += max(kernel_times[i], transfer_times[i + 1])
        overlapped += kernel_times[-1]
        return StreamingReport(
            blocks=len(blocks),
            kernel_ms=float(np.sum(kernel_times)),
            transfer_ms=float(np.sum(transfer_times)),
            overlapped_ms=overlapped,
            output=w,
        )

    def serial_time_ms(self, report: StreamingReport) -> float:
        """What the same work would cost without overlap (ablation)."""
        return report.kernel_ms + report.transfer_ms
