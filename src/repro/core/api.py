"""Public convenience API for evaluating the generic pattern.

Most users need exactly one call::

    from repro import evaluate
    res = evaluate(X, y, v=v, z=z, alpha=2.0, beta=0.5)   # fused by default
    res.output      # the vector w
    res.time_ms     # model time on the simulated GTX Titan

with ``X`` either a :class:`~repro.sparse.CsrMatrix` or a dense 2-D array.
"""

from __future__ import annotations

import numpy as np

from ..kernels.base import DEFAULT_CONTEXT, GpuContext, KernelResult
from ..sparse.csr import CsrMatrix
from .executor import PatternExecutor
from .pattern import GenericPattern, Instantiation, classify


def evaluate(X: CsrMatrix | np.ndarray, y: np.ndarray,
             v: np.ndarray | None = None, z: np.ndarray | None = None,
             alpha: float = 1.0, beta: float = 0.0,
             strategy: str = "auto",
             ctx: GpuContext | None = None,
             check: bool = False) -> KernelResult:
    """Evaluate ``alpha * X^T (v ⊙ (X y)) + beta * z`` under a strategy.

    Parameters mirror Eq. 1; ``strategy`` is one of ``fused`` (the paper's
    kernel), ``cusparse``, ``cusparse-explicit``, ``bidmat-gpu``,
    ``bidmat-cpu``, or ``auto``.
    """
    p = GenericPattern(X, y, v=v, z=z, alpha=alpha, beta=beta)
    ex = PatternExecutor(ctx or DEFAULT_CONTEXT, check=check)
    return ex.evaluate(p, strategy)


def mvtmv(X: CsrMatrix | np.ndarray, y: np.ndarray,
          strategy: str = "auto", ctx: GpuContext | None = None
          ) -> KernelResult:
    """The ``X^T x (X x y)`` instantiation (named after Listing 2's kernel)."""
    return evaluate(X, y, strategy=strategy, ctx=ctx)


def xt_mv(X: CsrMatrix | np.ndarray, y: np.ndarray, alpha: float = 1.0,
          strategy: str = "auto", ctx: GpuContext | None = None
          ) -> KernelResult:
    """The ``alpha * X^T x y`` instantiation (y has length m)."""
    p = GenericPattern(X, y, alpha=alpha, inner=False)
    ex = PatternExecutor(ctx or DEFAULT_CONTEXT)
    return ex.evaluate(p, strategy)


def pattern_of(X, y, v=None, z=None, alpha=1.0, beta=0.0,
               inner: bool = True) -> Instantiation:
    """Classify a prospective computation onto its Table-1 row."""
    return classify(GenericPattern(X, y, v=v, z=z, alpha=alpha, beta=beta,
                                   inner=inner))
