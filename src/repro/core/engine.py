"""Cached plan/tuning session layer with batched evaluation.

Iterative ML algorithms (LR-CG, GLM, HITS) evaluate the *same* pattern on
the *same* matrix hundreds of times — only the vectors change.  A plain
:class:`~repro.core.executor.PatternExecutor` re-pays the per-call costs on
every ``evaluate()``: strategy selection, the §3.3 parameter derivation
(Eq. 4/5/6), dense-kernel code generation, and — for transpose-based routes —
the ``csr2csc`` conversion whose amortization Figure 2 quantifies.

:class:`PatternEngine` is the session object that amortizes all of that,
in the spirit of SystemML's fusion-plan caching (Boehm et al.,
arXiv:1801.00829):

* **fingerprinting** — inputs are keyed by a content digest of the matrix
  (values + indices + shape), the device spec, and the pattern's Table-1
  structure, so mutating the data or switching devices misses the cache;
* **plan memoization** — the resolved strategy and its analytically tuned
  ``VS/BS/C/TL`` parameters are reused on warm calls;
* **artifact memoization** — the explicit ``csr2csc`` transpose is built
  (and charged) once, then reused without further model-time cost; compiled
  codegen kernels are pinned for the session;
* **LRU bounds** — plan entries and artifact bytes are capped, with
  explicit :meth:`~PatternEngine.invalidate` / :meth:`~PatternEngine.clear`;
* **batched evaluation** — :meth:`~PatternEngine.evaluate_many` runs
  independent requests through a thread pool with per-request wall timing;
* **accounting** — :meth:`~PatternEngine.stats` reports hits/misses, bytes
  cached, and amortized-vs-cold model time.

Numerical results are *never* cached: every call recomputes the output with
the (cached) plan, so engine results are bit-identical to uncached
:func:`repro.core.api.evaluate`.
"""

from __future__ import annotations

import threading
import time
import warnings
import weakref
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import astuple, dataclass, field, fields
from hashlib import blake2b

import numpy as np

from .. import trace
from ..kernels import codegen
from ..kernels.base import DEFAULT_CONTEXT, GpuContext, KernelResult, chain
from ..kernels.dense_baseline import profile_gemv
from ..kernels.dense_fused import profile_dense_fused
from ..kernels.sparse_baseline import csr2csc_kernel, profile_csrmv
from ..kernels.sparse_fused import profile_sparse_fused
from ..sparse.csr import CsrMatrix
from ..sparse.ops import SpmvPlan
from ..tuning.dense_params import DenseParams, tune_dense
from ..tuning.sparse_params import SparseParams, tune_sparse
from .executor import PatternExecutor
from .pattern import GenericPattern

_D = 8


# --------------------------------------------------------------- fingerprints
def fingerprint_matrix(X: CsrMatrix | np.ndarray) -> str:
    """Content digest of an operand matrix.

    Hashes the actual data (values, indices, shape), not object identity:
    mutating a matrix in place *must* produce a different fingerprint, and
    two structurally identical matrices share one.
    """
    h = blake2b(digest_size=16)
    if isinstance(X, CsrMatrix):
        h.update(b"csr")
        h.update(np.asarray(X.shape, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(X.values))
        h.update(np.ascontiguousarray(X.col_idx))
        h.update(np.ascontiguousarray(X.row_off))
    else:
        Xd = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
        h.update(b"dense")
        h.update(np.asarray(Xd.shape, dtype=np.int64).tobytes())
        h.update(Xd)
    return h.hexdigest()


def fingerprint_device(ctx: GpuContext) -> str:
    """Digest of the device spec plus the context's cache-behaviour flags."""
    h = blake2b(digest_size=8)
    h.update(repr(astuple(ctx.device)).encode())
    h.update(bytes([ctx.use_texture_cache, ctx.use_l2_reuse]))
    return h.hexdigest()


# -------------------------------------------------------------- cache entries
@dataclass
class PlanEntry:
    """A memoized fusion decision: resolved strategy + tuned parameters."""

    strategy: str
    params: SparseParams | DenseParams | None = None
    codegen_key: tuple[int, int, int] | None = None
    nbytes: int = 512            # rough footprint of the entry itself


@dataclass
class ArtifactEntry:
    """An expensive derived object (today: the csr2csc transpose)."""

    kind: str
    value: object
    nbytes: int
    build_ms: float              # model time charged when it was built


@dataclass
class PatternRequest:
    """One independent evaluation request for :meth:`evaluate_many`."""

    X: CsrMatrix | np.ndarray
    y: np.ndarray
    v: np.ndarray | None = None
    z: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0
    inner: bool = True
    strategy: str = "auto"

    def pattern(self) -> GenericPattern:
        return GenericPattern(self.X, self.y, v=self.v, z=self.z,
                              alpha=self.alpha, beta=self.beta,
                              inner=self.inner)


@dataclass
class BatchResult:
    """Per-request outcome of a batched evaluation."""

    index: int
    result: KernelResult
    wall_ms: float               # host wall-clock spent on this request
    cached: bool                 # True when plan (and artifacts) were warm
    started_at: float = 0.0      # time.monotonic() when evaluation began


@dataclass
class EngineStats:
    """Snapshot of the engine's cache behaviour and amortization."""

    calls: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    transposes_built: int = 0
    profiles_built: int = 0
    kernels_compiled: int = 0
    compiled_kernels_built: int = 0
    compile_fallbacks: int = 0
    pinned_fingerprint_hits: int = 0
    fusion_plans_built: int = 0
    evictions: int = 0
    invalidations: int = 0
    plan_entries: int = 0
    artifact_bytes: int = 0
    bytes_cached: int = 0
    cold_calls: int = 0
    warm_calls: int = 0
    cold_model_ms: float = 0.0
    warm_model_ms: float = 0.0
    batches: int = 0
    batch_requests: int = 0
    batch_max_requests: int = 0
    batch_wall_ms: float = 0.0
    #: artifact-LRU composition: per-kind entry counts (snapshot-only)
    artifact_kinds: dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        lookups = self.plan_hits + self.plan_misses
        return self.plan_hits / lookups if lookups else 0.0

    @property
    def cold_ms_per_call(self) -> float:
        return self.cold_model_ms / self.cold_calls if self.cold_calls else 0.0

    @property
    def warm_ms_per_call(self) -> float:
        return self.warm_model_ms / self.warm_calls if self.warm_calls else 0.0

    @property
    def amortized_speedup(self) -> float:
        """Cold per-call model time over warm per-call model time."""
        if not (self.cold_calls and self.warm_calls and self.warm_ms_per_call):
            return 1.0
        return self.cold_ms_per_call / self.warm_ms_per_call

    def to_dict(self) -> dict:
        """JSON-able export with *sorted* keys at every level.

        The serving metrics endpoint and the cluster router's shard
        aggregation both merge these dicts; deterministic key order is what
        makes the merged output (and its tests) stable across shards and
        runs, so the keys are sorted here rather than at every call site.
        """
        out: dict = {f.name: getattr(self, f.name)
                     for f in fields(self) if f.name != "artifact_kinds"}
        out["plan_hit_rate"] = self.hit_rate
        out["artifact_kinds"] = {k: self.artifact_kinds[k]
                                 for k in sorted(self.artifact_kinds)}
        return {k: out[k] for k in sorted(out)}

    def report(self) -> str:
        lines = [
            f"calls:            {self.calls} "
            f"({self.cold_calls} cold, {self.warm_calls} warm)",
            f"plan cache:       {self.plan_hits} hits / "
            f"{self.plan_misses} misses (hit-rate {self.hit_rate:.3f}), "
            f"{self.plan_entries} entries, {self.evictions} evictions, "
            f"{self.invalidations} invalidations",
            f"artifacts:        {self.artifact_hits} hits / "
            f"{self.artifact_misses} misses, "
            f"{self.transposes_built} transposes built, "
            f"{self.profiles_built} profiles built, "
            f"{self.kernels_compiled} kernels compiled",
            f"sparse AOT:       {self.compiled_kernels_built} bundles built, "
            f"{self.compile_fallbacks} compile fallbacks, "
            f"{self.pinned_fingerprint_hits} pinned-fingerprint hits",
            f"bytes cached:     {self.bytes_cached}",
            f"cold model-time:  {self.cold_ms_per_call:.4f} ms/call",
            f"warm model-time:  {self.warm_ms_per_call:.4f} ms/call",
            f"amortized speedup: {self.amortized_speedup:.2f}x",
        ]
        if self.batch_requests:
            lines.append(
                f"batched:          {self.batch_requests} requests in "
                f"{self.batches} batches (largest "
                f"{self.batch_max_requests}), "
                f"{self.batch_wall_ms:.2f} wall-ms total")
        if self.artifact_kinds:
            lines.append("artifact LRU composition:")
            for kind in sorted(self.artifact_kinds):
                lines.append(
                    f"  {kind}: {self.artifact_kinds[kind]} entries")
        return "\n".join(lines)


# --------------------------------------------------------------------- engine
class PatternEngine:
    """Session layer that caches fusion plans, tuning, and derived artifacts.

    Parameters
    ----------
    ctx:
        GPU context the session is bound to (device spec + cache flags).
    max_plans:
        LRU bound on memoized plan entries.
    max_artifact_bytes:
        LRU bound on the total bytes of cached artifacts (transposes).
    check:
        Verify every result against the NumPy reference (slow; tests only).
    compile_kernels:
        Build AOT-compiled sparse kernel bundles for fused sparse plans
        (the warm-path fast route).  Disable to force interpreted dispatch
        (benchmark baseline / debugging).
    """

    def __init__(self, ctx: GpuContext | None = None, max_plans: int = 256,
                 max_artifact_bytes: int = 256 * 1024 * 1024,
                 check: bool = False, compile_kernels: bool = True):
        self.ctx = ctx or DEFAULT_CONTEXT
        self.check = check
        self.compile_kernels = compile_kernels
        self.executor = PatternExecutor(self.ctx)
        self.max_plans = max_plans
        self.max_artifact_bytes = max_artifact_bytes
        self._plans: OrderedDict[tuple, PlanEntry] = OrderedDict()
        self._artifacts: OrderedDict[tuple, ArtifactEntry] = OrderedDict()
        self._artifact_bytes = 0
        self._lock = threading.RLock()
        self._device_fp = fingerprint_device(self.ctx)
        self._stats = EngineStats()
        #: pinned matrices: id(X) -> (weakref, fingerprint, frozen arrays)
        self._pinned: dict[int, tuple] = {}

    # ------------------------------------------------------------ public API
    def evaluate(self, X: CsrMatrix | np.ndarray, y: np.ndarray,
                 v: np.ndarray | None = None, z: np.ndarray | None = None,
                 alpha: float = 1.0, beta: float = 0.0,
                 strategy: str = "auto", inner: bool = True) -> KernelResult:
        """Evaluate Eq. 1 through the session cache (API mirror of
        :func:`repro.core.api.evaluate`)."""
        p = GenericPattern(X, y, v=v, z=z, alpha=alpha, beta=beta,
                           inner=inner)
        return self.evaluate_pattern(p, strategy)

    def evaluate_pattern(self, p: GenericPattern,
                         strategy: str = "auto") -> KernelResult:
        """Evaluate a prepared pattern; plans/artifacts come from the cache."""
        res, _ = self._evaluate(p, strategy)
        return res

    def evaluate_many(self, requests, max_workers: int | None = None
                      ) -> list[BatchResult]:
        """Run independent pattern evaluations through a thread pool.

        ``requests`` is a sequence of :class:`PatternRequest`, mappings with
        the same field names, or prepared :class:`GenericPattern` objects.
        Results come back in request order, each with its own wall-clock
        timing and a flag saying whether it was served warm.
        """
        items = [self._coerce_request(r) for r in requests]
        if not items:
            return []
        workers = max_workers or min(8, len(items))

        batch_span = trace.span("batch", "engine",
                                requests=len(items), workers=workers)
        with batch_span:
            parent = trace.current_id()

            def run(idx_req):
                idx, (p, strategy) = idx_req
                started = time.monotonic()
                t0 = time.perf_counter()
                with trace.span("request", "engine", parent=parent,
                                index=idx):
                    res, cached = self._evaluate(p, strategy)
                wall = (time.perf_counter() - t0) * 1e3
                return BatchResult(idx, res, wall, cached, started)

            t0 = time.perf_counter()
            if workers <= 1:
                out = [run(item) for item in enumerate(items)]
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    out = list(pool.map(run, enumerate(items)))
            batch_wall = (time.perf_counter() - t0) * 1e3
        with self._lock:
            self._stats.batches += 1
            self._stats.batch_requests += len(items)
            self._stats.batch_max_requests = max(
                self._stats.batch_max_requests, len(items))
            self._stats.batch_wall_ms += batch_wall
        return out

    def fusion_plan(self, root, env: dict, node_budget: int = 32,
                    max_exhaustive: int = 12, expression: str = ""):
        """Optimize an expression DAG through the session's artifact cache.

        Plans are keyed by :func:`~repro.systemml.fusion.fingerprint_dag`
        (DAG topology + matrix content + vector lengths + device), so an
        iterative solver enumerates and costs a DAG once and replays the
        cached :class:`~repro.systemml.fusion.FusionPlan` — including its
        lazily lowered DAG — on every subsequent iteration.  Plans live in
        the byte-bounded artifact LRU; note :meth:`invalidate` keys on the
        *matrix* fingerprint and does not match plan keys, so stale plans
        age out of the LRU rather than being dropped eagerly.
        """
        from ..systemml.fusion import fingerprint_dag, optimize

        dag_fp = fingerprint_dag(root, env, self._device_fp)
        akey = (dag_fp, self._device_fp, "fusion-plan")
        with self._lock:
            art = self._artifacts.get(akey)
            if art is not None:
                self._artifacts.move_to_end(akey)
                self._stats.artifact_hits += 1
                return art.value
        with trace.span("fusion-plan", "engine") as sp:
            plan = optimize(root, env, ctx=self.ctx, engine=self,
                            node_budget=node_budget,
                            max_exhaustive=max_exhaustive,
                            expression=expression)
            sp.set("search", plan.search)
            sp.count(candidates=len(plan.candidates),
                     chosen=len(plan.chosen))
        # the plan object is small; charge a nominal footprint to the LRU
        self._store_profile(akey, "fusion-plan", plan, 4096)
        with self._lock:
            self._stats.fusion_plans_built += 1
        return plan

    def snapshot(self) -> EngineStats:
        """Consistent point-in-time snapshot of counters and cache sizes.

        The whole snapshot — counter copy, LRU entry count, and the byte
        totals — is assembled while holding the cache lock, so it can never
        observe a cache mid-eviction (counters from before an eviction,
        sizes from after).  Concurrent ``evaluate``/``evaluate_many``
        callers are safe; see ``tests/test_engine_concurrency.py``.
        """
        with self._lock:
            s = EngineStats(**{f: getattr(self._stats, f)
                               for f in self._stats.__dataclass_fields__})
            s.plan_entries = len(self._plans)
            s.artifact_bytes = self._artifact_bytes
            s.bytes_cached = (self._artifact_bytes
                              + sum(e.nbytes for e in self._plans.values()))
            kinds: dict[str, int] = {}
            for e in self._artifacts.values():
                kinds[e.kind] = kinds.get(e.kind, 0) + 1
            s.artifact_kinds = kinds
        return s

    def stats(self) -> EngineStats:
        """Alias of :meth:`snapshot` (kept for the PR-1 API)."""
        return self.snapshot()

    def invalidate(self, X: CsrMatrix | np.ndarray) -> int:
        """Drop every plan and artifact derived from ``X``; returns count.

        Also releases any pin on ``X`` (restoring writability), so
        ``invalidate`` doubles as "I am about to mutate this matrix".
        """
        self.unpin(X)
        fp = fingerprint_matrix(X)
        removed = 0
        with self._lock:
            for key in [k for k in self._plans if k[0] == fp]:
                del self._plans[key]
                removed += 1
            for key in [k for k in self._artifacts if k[0] == fp]:
                self._artifact_bytes -= self._artifacts[key].nbytes
                del self._artifacts[key]
                removed += 1
            self._stats.invalidations += removed
        return removed

    def clear(self) -> None:
        """Empty both caches (counters are preserved)."""
        with self._lock:
            self._plans.clear()
            self._artifacts.clear()
            self._artifact_bytes = 0

    # ---------------------------------------------------- pinned fingerprints
    def pin(self, X: CsrMatrix | np.ndarray) -> str:
        """Freeze ``X`` and memoize its content fingerprint.

        Warm calls on a pinned matrix skip the full content hash — the
        dominant per-call host cost once kernels are compiled.  Soundness
        comes from freezing: every backing array is marked read-only, so
        the in-place mutation that fingerprinting exists to detect raises
        instead of silently invalidating the memo.  :meth:`unpin` restores
        writability.  Unpinned matrices keep the full hash-per-call
        semantics unchanged.
        """
        arrays = self._backing_arrays(X)
        for a in arrays:
            a.flags.writeable = False
        fp = fingerprint_matrix(X)
        key = id(X)
        try:
            ref = weakref.ref(X, lambda _: self._pinned.pop(key, None))
        except TypeError:
            # ndarrays aren't weakref-able; a strong ref keeps the memo's
            # id() stable (the pin holds the matrix alive until unpin)
            ref = (lambda obj: (lambda: obj))(X)
        with self._lock:
            self._pinned[key] = (ref, fp, arrays)
        return fp

    def unpin(self, X: CsrMatrix | np.ndarray) -> None:
        """Drop the fingerprint memo and restore array writability."""
        with self._lock:
            entry = self._pinned.pop(id(X), None)
        if entry is not None:
            for a in entry[2]:
                try:
                    a.flags.writeable = True
                except ValueError:       # view of a buffer we do not own
                    pass

    @staticmethod
    def _backing_arrays(X: CsrMatrix | np.ndarray) -> tuple[np.ndarray, ...]:
        if isinstance(X, CsrMatrix):
            return (X.values, X.col_idx, X.row_off)
        return (np.asarray(X),)

    def _fingerprint(self, X: CsrMatrix | np.ndarray) -> tuple[str, bool]:
        """Content fingerprint; memoized (no hashing) for pinned matrices.

        Returns ``(fingerprint, was_pinned)``.  The memo is honoured only
        while the pin is intact: same object, same backing arrays, still
        read-only.  Anything else — including a rebind of ``X.values`` to a
        fresh writable array — falls back to full hashing.
        """
        with self._lock:
            entry = self._pinned.get(id(X))
            if entry is not None:
                ref, fp, arrays = entry
                if ref() is X and self._pin_intact(X, arrays):
                    self._stats.pinned_fingerprint_hits += 1
                    return fp, True
                self._pinned.pop(id(X), None)
        return fingerprint_matrix(X), False

    @staticmethod
    def _pin_intact(X: CsrMatrix | np.ndarray, arrays: tuple) -> bool:
        current = PatternEngine._backing_arrays(X)
        if len(current) != len(arrays):
            return False
        return all(c is a and not a.flags.writeable
                   for c, a in zip(current, arrays))

    def compiled_for_pinned(self, X: CsrMatrix) -> object | None:
        """Cached AOT bundle for a *pinned* sparse matrix, without hashing.

        The DAG executor's per-node dispatch cannot afford a content hash,
        so compiled pickup there is gated on the pin memo: returns the
        cached :class:`~repro.kernels.codegen.CompiledSparseKernels` if
        ``X`` is pinned with its pin intact and a bundle is already in the
        LRU, else ``None`` (never builds).
        """
        if not (self.compile_kernels and isinstance(X, CsrMatrix)):
            return None
        with self._lock:
            entry = self._pinned.get(id(X))
        if entry is None:
            return None
        ref, fp, arrays = entry
        if ref() is not X or not self._pin_intact(X, arrays):
            return None
        akey = (fp, self._device_fp, "compiled:sparse")
        with self._lock:
            art = self._artifacts.get(akey)
            if art is not None and art.value is not None:
                self._artifacts.move_to_end(akey)
                self._stats.artifact_hits += 1
                return art.value
        return None

    # -------------------------------------------------------------- internals
    @staticmethod
    def _coerce_request(r) -> tuple[GenericPattern, str]:
        if isinstance(r, GenericPattern):
            return r, "auto"
        if isinstance(r, PatternRequest):
            return r.pattern(), r.strategy
        if isinstance(r, dict):
            req = PatternRequest(**r)
            return req.pattern(), req.strategy
        raise TypeError(
            "requests must be PatternRequest, GenericPattern, or dict, "
            f"got {type(r).__name__}")

    def _plan_key(self, p: GenericPattern, mat_fp: str,
                  strategy: str) -> tuple:
        return (mat_fp, self._device_fp, p.is_sparse, p.inner,
                p.v is not None, p.beta != 0.0, strategy)

    def _evaluate(self, p: GenericPattern,
                  strategy: str) -> tuple[KernelResult, bool]:
        span = trace.span("evaluate", "engine", strategy=strategy)
        with span:
            return self._evaluate_traced(p, strategy, span)

    def _evaluate_traced(self, p: GenericPattern, strategy: str,
                         span) -> tuple[KernelResult, bool]:
        with trace.span("fingerprint", "engine") as fsp:
            mat_fp, pinned = self._fingerprint(p.X)
            fsp.set("pinned", pinned)
        key = self._plan_key(p, mat_fp, strategy)
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                self._plans.move_to_end(key)
                self._stats.plan_hits += 1
        plan_hit = entry is not None
        if entry is None:
            entry = self._resolve(p, strategy)
            with self._lock:
                self._stats.plan_misses += 1
                # racing resolves build identical plans for the same key, so
                # the re-insert after dropping the lock is idempotent
                # analyze: allow(lock-drop-reentry)
                self._plans[key] = entry
                while len(self._plans) > self.max_plans:
                    self._plans.popitem(last=False)
                    self._stats.evictions += 1

        res, artifacts_warm = self._execute(p, entry, mat_fp)
        cached = plan_hit and artifacts_warm
        span.set("plan", "hit" if plan_hit else "miss")
        span.set("cached", cached)
        span.set("resolved_strategy", entry.strategy)

        if self.check:
            ref = p.reference()
            if not np.allclose(res.output, ref, rtol=1e-9,
                               atol=1e-9 * max(1.0, float(
                                   np.abs(ref).max(initial=0.0)))):
                raise AssertionError(
                    f"engine strategy {entry.strategy!r} diverged from "
                    f"reference "
                    f"(max err {np.abs(res.output - ref).max():.3g})")

        with self._lock:
            self._stats.calls += 1
            if cached:
                self._stats.warm_calls += 1
                self._stats.warm_model_ms += res.time_ms
            else:
                self._stats.cold_calls += 1
                self._stats.cold_model_ms += res.time_ms
        return res, cached

    def _resolve(self, p: GenericPattern, strategy: str) -> PlanEntry:
        """Cold path: pick the plan and derive its launch parameters."""
        with trace.span("plan", "engine", requested=strategy) as sp:
            resolved = strategy
            if resolved == "auto":
                resolved = self.executor.choose_strategy(p)
            self.executor.plan_for(p, resolved)      # validates the name
            sp.set("strategy", resolved)
            params: SparseParams | DenseParams | None = None
            ck = None
            if resolved == "fused":
                if p.is_sparse:
                    with trace.span("tune", "engine"):
                        params = tune_sparse(p.X, self.ctx.device)
                elif p.inner:
                    with trace.span("tune", "engine"):
                        params = tune_dense(*p.shape, device=self.ctx.device)
                    ck = (params.padded_n, params.vector_size,
                          params.thread_load)
                    _, compiled = codegen.ensure_kernel(*ck)
                    if compiled:
                        with self._lock:
                            self._stats.kernels_compiled += 1
            return PlanEntry(strategy=resolved, params=params,
                             codegen_key=ck)

    def _execute(self, p: GenericPattern, entry: PlanEntry,
                 mat_fp: str) -> tuple[KernelResult, bool]:
        """Run the memoized plan; returns (result, artifacts_were_warm)."""
        plan = self.executor.plan_for(p, entry.strategy)
        if entry.strategy == "fused":
            prof, prof_warm = self._profile_for(p, entry, mat_fp)
            compiled = (self._compiled_for(p.X, entry, mat_fp, prof)
                        if p.is_sparse else None)
            return plan.evaluate(p, params=entry.params, profile=prof,
                                 compiled=compiled), prof_warm
        if entry.strategy == "cusparse-explicit" and p.is_sparse:
            XT, trans_res, warm = self._transpose_for(p.X, mat_fp)
            if p.inner:
                x_prof, x_warm = self._profile_for(p, entry, mat_fp)
            else:
                x_prof, x_warm = None, True
            xt_prof, xt_warm = self._xt_profile_for(XT, mat_fp)
            res = plan.evaluate(p, xt=XT, profile=x_prof,
                                xt_profile=xt_prof)
            if trans_res is not None:
                # the one-time conversion is charged to the cold call
                res = chain(trans_res, res, name=res.name)
            return res, warm and x_warm and xt_warm
        prof, prof_warm = self._profile_for(p, entry, mat_fp)
        if prof is None:
            return plan.evaluate(p), prof_warm
        return plan.evaluate(p, profile=prof), prof_warm

    # ------------------------------------------------------- kernel profiles
    def _profile_kind(self, p: GenericPattern, strategy: str) -> str | None:
        """Artifact key suffix for the profile a (pattern, strategy) needs.

        One profile serves a whole kernel family, so distinct plan keys that
        route to the same kernels (e.g. ``cusparse`` and ``bidmat-gpu`` over
        one sparse matrix) share a single cached template.
        """
        if strategy == "bidmat-cpu":
            return None                      # roofline model, no counters
        if p.is_sparse:
            if strategy == "fused":
                return "profile:fused-sparse"
            return "profile:csrmv"
        if strategy == "fused" and p.inner:
            return "profile:fused-dense"
        return "profile:gemv"

    def _profile_for(self, p: GenericPattern, entry: PlanEntry,
                     mat_fp: str) -> tuple[object | None, bool]:
        """Fetch or build the kernel profile for this plan entry.

        Returns ``(profile_or_None, was_warm)``.  Profiles live in the same
        LRU as the csr2csc transpose, keyed by the matrix's *content*
        fingerprint — mutating the matrix in place produces a different
        fingerprint and therefore a fresh inspection, never a stale template.
        """
        kind = self._profile_kind(p, entry.strategy)
        if kind is None:
            return None, True
        akey = (mat_fp, self._device_fp, kind)
        with self._lock:
            art = self._artifacts.get(akey)
            if art is not None:
                self._artifacts.move_to_end(akey)
                self._stats.artifact_hits += 1
                return art.value, True
        with trace.span("profile-build", "engine", kind=kind) as sp:
            if kind == "profile:fused-sparse":
                splan = self._spmv_plan_for(p.X, mat_fp)
                prof = profile_sparse_fused(p.X, self.ctx, entry.params,
                                            spmv_plan=splan)
            elif kind == "profile:csrmv":
                splan = self._spmv_plan_for(p.X, mat_fp)
                prof = profile_csrmv(p.X, self.ctx, spmv_plan=splan)
            elif kind == "profile:fused-dense":
                prof = profile_dense_fused(np.asarray(p.X, dtype=np.float64),
                                           self.ctx, entry.params)
            else:
                prof = profile_gemv(p.X, self.ctx)
            sp.count(bytes_built=int(prof.nbytes))
        self._store_profile(akey, kind, prof, int(prof.nbytes))
        return prof, False

    def _xt_profile_for(self, XT: CsrMatrix,
                        mat_fp: str) -> tuple[object, bool]:
        """Profile for the steady-state ``csrmv`` over the cached transpose.

        Keyed by the *original* matrix's fingerprint (the transpose is a
        derived artifact under the same key family), so invalidation drops
        both together.
        """
        akey = (mat_fp, self._device_fp, "profile:xt-csrmv")
        with self._lock:
            art = self._artifacts.get(akey)
            if art is not None:
                self._artifacts.move_to_end(akey)
                self._stats.artifact_hits += 1
                return art.value, True
        with trace.span("profile-build", "engine",
                        kind="profile:xt-csrmv") as sp:
            prof = profile_csrmv(XT, self.ctx)
            sp.count(bytes_built=int(prof.nbytes))
        self._store_profile(akey, "profile:xt-csrmv", prof,
                            int(prof.nbytes))
        return prof, False

    def _spmv_plan_for(self, X: CsrMatrix, mat_fp: str) -> SpmvPlan:
        """Shared planned-SpMV artifact (reduceat starts + row expansion).

        Several profile kinds over the same matrix reference one plan, so
        the O(nnz) row-expansion index is materialized once per matrix.
        """
        akey = (mat_fp, self._device_fp, "spmv-plan")
        with self._lock:
            art = self._artifacts.get(akey)
            if art is not None:
                self._artifacts.move_to_end(akey)
                self._stats.artifact_hits += 1
                return art.value
        with trace.span("profile-build", "engine", kind="spmv-plan") as sp:
            plan = SpmvPlan(X)
            sp.count(bytes_built=int(plan.nbytes), nnz=X.nnz)
        self._store_profile(akey, "spmv-plan", plan, int(plan.nbytes))
        return plan

    def _compiled_for(self, X: CsrMatrix, entry: PlanEntry, mat_fp: str,
                      prof) -> object | None:
        """Fetch or build the AOT sparse-kernel bundle for a fused plan.

        Cached in the artifact LRU next to the kernel profile, keyed by the
        matrix *content* fingerprint, so structure mutation (new
        fingerprint) recompiles and :meth:`invalidate` drops the bundle
        with everything else.  A generator/compile failure degrades to
        interpreted dispatch: one :class:`RuntimeWarning`, a
        ``compile_fallbacks`` tick, and a negative cache entry so the
        failure is not retried (and not re-warned) every call.
        """
        if not self.compile_kernels:
            return None
        akey = (mat_fp, self._device_fp, "compiled:sparse")
        with self._lock:
            art = self._artifacts.get(akey)
            if art is not None:
                self._artifacts.move_to_end(akey)
                self._stats.artifact_hits += 1
                return art.value          # None = memoized compile failure
        try:
            with trace.span("kernel-compile", "engine",
                            kind="compiled:sparse") as sp:
                splan = getattr(prof, "spmv_plan", None) \
                    or self._spmv_plan_for(X, mat_fp)
                params = entry.params
                bundle = codegen.CompiledSparseKernels(
                    X, splan,
                    vs=params.vector_size if params is not None else 32,
                    c=params.coarsening if params is not None else 1)
                sp.set("tag", bundle.tag)
                sp.count(fresh_compiles=bundle.fresh_compiles,
                         bytes_built=bundle.nbytes)
        except Exception as exc:  # noqa: BLE001 - any failure must degrade
            warnings.warn(
                f"sparse kernel compilation failed ({exc!r}); "
                f"falling back to interpreted dispatch", RuntimeWarning,
                stacklevel=2)
            with self._lock:
                self._stats.compile_fallbacks += 1
            self._store_profile(akey, "compiled:sparse", None, 256,
                                count_as=None)
            return None
        self._store_profile(akey, "compiled:sparse", bundle,
                            int(bundle.nbytes),
                            count_as="compiled_kernels_built")
        return bundle

    def _store_profile(self, akey: tuple, kind: str, value: object,
                       nbytes: int,
                       count_as: str | None = "profiles_built") -> None:
        with self._lock:
            if akey in self._artifacts:       # lost a build race: keep first
                return
            self._stats.artifact_misses += 1
            if count_as is not None:
                setattr(self._stats, count_as,
                        getattr(self._stats, count_as) + 1)
            self._artifacts[akey] = ArtifactEntry(kind, value, nbytes, 0.0)
            self._artifact_bytes += nbytes
            while (self._artifact_bytes > self.max_artifact_bytes
                   and len(self._artifacts) > 1):
                _, old = self._artifacts.popitem(last=False)
                self._artifact_bytes -= old.nbytes
                self._stats.evictions += 1

    def _transpose_for(self, X: CsrMatrix, mat_fp: str
                       ) -> tuple[CsrMatrix, KernelResult | None, bool]:
        akey = (mat_fp, self._device_fp, "csr2csc")
        with self._lock:
            art = self._artifacts.get(akey)
            if art is not None:
                self._artifacts.move_to_end(akey)
                self._stats.artifact_hits += 1
                return art.value, None, True
        with trace.span("transpose-build", "engine") as sp:
            trans_res = csr2csc_kernel(X, self.ctx)
            csc = trans_res.output
            XT = CsrMatrix((X.n, X.m), csc.values, csc.row_idx, csc.col_off)
            nbytes = int(XT.values.nbytes + XT.col_idx.nbytes
                         + XT.row_off.nbytes)
            sp.count(bytes_built=nbytes, nnz=X.nnz)
        with self._lock:
            existing = self._artifacts.get(akey)
            if existing is not None:          # lost a build race: keep first
                return existing.value, trans_res, False
            self._stats.artifact_misses += 1
            self._stats.transposes_built += 1
            # keep-first recheck above makes the dropped-lock rebuild safe
            # analyze: allow(lock-drop-reentry)
            self._artifacts[akey] = ArtifactEntry(
                "csr2csc", XT, nbytes, trans_res.time_ms)
            self._artifact_bytes += nbytes
            while (self._artifact_bytes > self.max_artifact_bytes
                   and len(self._artifacts) > 1):
                _, old = self._artifacts.popitem(last=False)
                self._artifact_bytes -= old.nbytes
                self._stats.evictions += 1
        return XT, trans_res, False
