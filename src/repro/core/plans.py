"""Execution plans: how a :class:`GenericPattern` gets computed and timed.

Each plan mirrors one of the strategies the paper evaluates:

* :class:`FusedPlan` — the paper's contribution: one fused kernel
  (Algorithm 2 for CSR, Algorithm 3 + codegen for dense).
* :class:`CusparsePlan` — the operator-level baseline: a chain of
  cuSPARSE/cuBLAS launches with materialized intermediates
  (``csrmv -> ewmul -> csrmv(trans) -> scal/axpy``).
* :class:`ExplicitTransposePlan` — NVIDIA's suggested route: ``csr2csc``
  (optionally amortized) followed by plain ``csrmv`` over ``X^T``.
* :class:`BidmatGpuPlan` — BIDMat's GPU kernels.
* :class:`BidmatCpuPlan` — BIDMat-CPU/MKL, via the CPU roofline model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.counters import PerfCounters
from ..gpu.cpu import CpuCostModel
from ..kernels import blas1, dense_baseline, dense_fused, sparse_baseline, \
    sparse_fused
from ..kernels.base import DEFAULT_CONTEXT, GpuContext, KernelResult, chain
from ..sparse.csr import CsrMatrix
from ..sparse.ops import spmv, spmv_t
from ..tuning.dense_params import tune_dense
from ..tuning.sparse_params import tune_sparse
from .pattern import GenericPattern

_D = 8
_I = 4


class Plan:
    """Interface: a plan evaluates a pattern and returns a timed result."""

    name = "plan"

    def evaluate(self, p: GenericPattern) -> KernelResult:  # pragma: no cover
        raise NotImplementedError


@dataclass
class FusedPlan(Plan):
    """The paper's fused kernel (sparse Algorithm 2 / dense Algorithm 3)."""

    ctx: GpuContext = field(default_factory=lambda: DEFAULT_CONTEXT)
    force_variant: str | None = None   # sparse: "shared" | "global"
    name = "fused"

    def evaluate(self, p: GenericPattern, *,
                 params=None, profile=None, compiled=None) -> KernelResult:
        """``params`` lets a session (:class:`~repro.core.engine.
        PatternEngine`) pass pre-resolved §3.3 parameters instead of
        re-tuning on every call; ``profile`` additionally supplies the
        matching kernel profile (sparse
        :class:`~repro.kernels.sparse_fused.SparseFusedProfile`, dense
        :class:`~repro.kernels.dense_fused.DenseFusedProfile`, or
        :class:`~repro.kernels.dense_baseline.GemvProfile` for the
        unfused dense transpose route).  ``compiled`` supplies an
        engine-cached :class:`~repro.kernels.codegen.
        CompiledSparseKernels` bundle for AOT dispatch (sparse only)."""
        if p.is_sparse:
            if params is None and profile is None:
                params = tune_sparse(p.X, self.ctx.device,
                                     force_variant=self.force_variant)
            if not p.inner:
                res = sparse_fused.xt_spmv_fused(p.X, p.y, self.ctx, params,
                                                 profile=profile,
                                                 compiled=compiled)
                if p.alpha != 1.0:
                    res.output = p.alpha * res.output
                if p.beta != 0.0:
                    res = chain(res, blas1.axpy(p.beta, p.z, res.output,
                                                self.ctx), name=res.name)
                return res
            return sparse_fused.fused_pattern_sparse(
                p.X, p.y, p.v, p.z, p.alpha, p.beta, self.ctx, params,
                profile=profile, compiled=compiled)
        Xd = np.asarray(p.X, dtype=np.float64)
        if not p.inner:
            # the paper does not fuse dense X^T x y (cuBLAS is already good)
            res = dense_baseline.gemv_t(Xd, p.y, self.ctx, profile=profile)
            if p.alpha != 1.0:
                res.output = p.alpha * res.output
            if p.beta != 0.0:
                res = chain(res, blas1.axpy(p.beta, p.z, res.output,
                                            self.ctx), name=res.name)
            return res
        if params is None and profile is None:
            params = tune_dense(*Xd.shape, device=self.ctx.device)
        return dense_fused.fused_pattern_dense(
            Xd, p.y, p.v, p.z, p.alpha, p.beta, self.ctx, params,
            profile=profile)


@dataclass
class CusparsePlan(Plan):
    """Operator-level baseline: one library kernel per operator."""

    ctx: GpuContext = field(default_factory=lambda: DEFAULT_CONTEXT)
    name = "cusparse"

    def evaluate(self, p: GenericPattern, *,
                 profile=None) -> KernelResult:
        """``profile`` is a shared :class:`~repro.kernels.sparse_baseline.
        CsrmvProfile` (sparse) or :class:`~repro.kernels.dense_baseline.
        GemvProfile` (dense) — one template serves every operator in the
        chain, since they all walk the same matrix."""
        steps: list[KernelResult] = []
        if p.is_sparse:
            if not p.inner:
                r = sparse_baseline.csrmv_transpose(p.X, p.y, self.ctx,
                                                    profile=profile)
            else:
                r1 = sparse_baseline.csrmv(p.X, p.y, self.ctx,
                                           profile=profile)
                steps.append(r1)
                inter = r1.output
                if p.v is not None:
                    r2 = blas1.ewmul(p.v, inter, self.ctx)
                    steps.append(r2)
                    inter = r2.output
                r = sparse_baseline.csrmv_transpose(p.X, inter, self.ctx,
                                                    profile=profile)
        else:
            Xd = np.asarray(p.X, dtype=np.float64)
            if not p.inner:
                r = dense_baseline.gemv_t(Xd, p.y, self.ctx, profile=profile)
            else:
                r1 = dense_baseline.gemv_n(Xd, p.y, self.ctx, profile=profile)
                steps.append(r1)
                inter = r1.output
                if p.v is not None:
                    r2 = blas1.ewmul(p.v, inter, self.ctx)
                    steps.append(r2)
                    inter = r2.output
                r = dense_baseline.gemv_t(Xd, inter, self.ctx,
                                          profile=profile)
        steps.append(r)
        out = r.output
        if p.alpha != 1.0:
            s = blas1.scal(p.alpha, out, self.ctx)
            steps.append(s)
            out = s.output
        if p.beta != 0.0:
            a = blas1.axpy(p.beta, p.z, out, self.ctx)
            steps.append(a)
        res = chain(*steps, name=self.name)
        return res


@dataclass
class ExplicitTransposePlan(Plan):
    """``csr2csc`` then plain ``csrmv`` — with or without amortization."""

    ctx: GpuContext = field(default_factory=lambda: DEFAULT_CONTEXT)
    amortized: bool = False      # True: transpose cost excluded (pre-built)
    name = "cusparse+csr2csc"

    def __post_init__(self) -> None:
        self._xt_cache: dict[int, CsrMatrix] = {}

    def evaluate(self, p: GenericPattern, *,
                 xt: CsrMatrix | None = None,
                 profile=None, xt_profile=None) -> KernelResult:
        """``xt`` lets a session pass a pre-built (already charged)
        transpose, modelling the amortized steady state of Fig. 2.
        ``profile`` templates the kernels over ``X`` (the inner ``csrmv``);
        ``xt_profile`` templates the steady-state ``csrmv`` over ``X^T``."""
        if not p.is_sparse:
            raise ValueError("explicit-transpose plan is sparse-only")
        steps: list[KernelResult] = []
        if p.inner:
            r1 = sparse_baseline.csrmv(p.X, p.y, self.ctx, profile=profile)
            steps.append(r1)
            inter = r1.output
            if p.v is not None:
                r2 = blas1.ewmul(p.v, inter, self.ctx)
                steps.append(r2)
                inter = r2.output
        else:
            inter = p.y
        key = id(p.X)
        XT = xt if xt is not None else (
            self._xt_cache.get(key) if self.amortized else None)
        spmv_res, trans_res = sparse_baseline.csrmv_via_explicit_transpose(
            p.X, inter, self.ctx, XT=XT,
            profile=xt_profile if XT is not None else None)
        if self.amortized and XT is None:
            # build and cache, but do not charge the (amortized) transpose
            csc = trans_res.output if trans_res is not None else None
            if csc is not None:
                self._xt_cache[key] = CsrMatrix((p.X.n, p.X.m), csc.values,
                                                csc.row_idx, csc.col_off)
            trans_res = None
        if trans_res is not None:
            steps.append(trans_res)
        steps.append(spmv_res)
        out = spmv_res.output
        if p.alpha != 1.0:
            s = blas1.scal(p.alpha, out, self.ctx)
            steps.append(s)
            out = s.output
        if p.beta != 0.0:
            steps.append(blas1.axpy(p.beta, p.z, out, self.ctx))
        return chain(*steps, name=self.name)


@dataclass
class BidmatGpuPlan(Plan):
    """BIDMat's GPU kernels, stitched operator by operator."""

    ctx: GpuContext = field(default_factory=lambda: DEFAULT_CONTEXT)
    name = "bidmat-gpu"

    def evaluate(self, p: GenericPattern, *,
                 profile=None) -> KernelResult:
        steps: list[KernelResult] = []
        if p.is_sparse:
            if p.inner:
                r1 = sparse_baseline.bidmat_spmv(p.X, p.y, self.ctx,
                                                 profile=profile)
                steps.append(r1)
                inter = r1.output
                if p.v is not None:
                    r2 = blas1.ewmul(p.v, inter, self.ctx)
                    steps.append(r2)
                    inter = r2.output
            else:
                inter = p.y
            r = sparse_baseline.bidmat_spmv_transpose(p.X, inter, self.ctx,
                                                      profile=profile)
        else:
            Xd = np.asarray(p.X, dtype=np.float64)
            if p.inner:
                r1 = dense_baseline.bidmat_gemv_n(Xd, p.y, self.ctx,
                                                  profile=profile)
                steps.append(r1)
                inter = r1.output
                if p.v is not None:
                    r2 = blas1.ewmul(p.v, inter, self.ctx)
                    steps.append(r2)
                    inter = r2.output
            else:
                inter = p.y
            r = dense_baseline.bidmat_gemv_t(Xd, inter, self.ctx,
                                             profile=profile)
        steps.append(r)
        out = r.output
        if p.alpha != 1.0:
            s = blas1.scal(p.alpha, out, self.ctx)
            steps.append(s)
            out = s.output
        if p.beta != 0.0:
            steps.append(blas1.axpy(p.beta, p.z, out, self.ctx))
        return chain(*steps, name=self.name)


@dataclass
class BidmatCpuPlan(Plan):
    """BIDMat-CPU (MKL, 8 hyper-threads) via the CPU roofline model."""

    cpu: CpuCostModel = field(default_factory=CpuCostModel)
    llc_bytes: float = 8 * 1024 * 1024
    name = "bidmat-cpu"

    def _gather_fraction(self, n: int) -> float:
        """Random-access share of SpMV traffic; tiny when y fits in LLC."""
        vec_bytes = n * _D
        return 0.05 if vec_bytes <= self.llc_bytes else 0.45

    def evaluate(self, p: GenericPattern) -> KernelResult:
        m, n = p.shape
        total_ms = 0.0
        if p.is_sparse:
            X: CsrMatrix = p.X
            nnz = X.nnz
            gf = self._gather_fraction(n)
            pass_bytes = nnz * (_D + _I) + m * _D
            if p.inner:
                total_ms += self.cpu.time_ms(pass_bytes, 2 * nnz, gf)
                if p.v is not None:
                    total_ms += self.cpu.time_ms(3 * m * _D, m, 0.0)
                total_ms += self.cpu.time_ms(pass_bytes + n * _D,
                                             2 * nnz, gf)
                out = spmv_t(X, (spmv(X, p.y) * (p.v if p.v is not None
                                                 else 1.0)))
            else:
                total_ms += self.cpu.time_ms(pass_bytes + n * _D,
                                             2 * nnz, gf)
                out = spmv_t(X, p.y)
        else:
            Xd = np.asarray(p.X, dtype=np.float64)
            pass_bytes = m * n * _D
            if p.inner:
                total_ms += self.cpu.time_ms(pass_bytes + m * _D, 2 * m * n)
                inter = Xd @ p.y
                if p.v is not None:
                    total_ms += self.cpu.time_ms(3 * m * _D, m)
                    inter = inter * p.v
                total_ms += self.cpu.time_ms(pass_bytes + n * _D, 2 * m * n)
                out = Xd.T @ inter
            else:
                total_ms += self.cpu.time_ms(pass_bytes + n * _D, 2 * m * n)
                out = Xd.T @ p.y
        out = p.alpha * out
        if p.alpha != 1.0:
            total_ms += self.cpu.time_ms(2 * n * _D, n)
        if p.beta != 0.0:
            out = out + p.beta * p.z
            total_ms += self.cpu.time_ms(3 * n * _D, n)
        return KernelResult(out, PerfCounters(), None, 1.0, total_ms,
                            name=self.name)
