"""Hybrid CPU/GPU execution of the generic pattern.

The paper's stated future work: "the development of a cost model that based
on a complete system profile decides on hybrid executions involving CPUs and
GPUs" (§5).  This module implements the obvious first design: split the rows
of X between the host and the device, run the fused kernel on the GPU share
and the MKL-like path on the CPU share concurrently, and add the partial
results (the pattern is additive over row blocks).

The split fraction is chosen analytically: with per-row cost rates
``g`` (GPU) and ``c`` (CPU), the makespan ``max(f m g, (1-f) m c)`` is
minimized at ``f* = c / (c + g)``.  Fixed costs (launches, the y broadcast)
bias small problems toward a single processor, which
:func:`HybridExecutor.optimal_split` accounts for by probing the endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.cpu import CpuCostModel
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..sparse.csr import CsrMatrix
from .pattern import GenericPattern
from .plans import BidmatCpuPlan, FusedPlan


@dataclass
class HybridReport:
    """Outcome of one hybrid evaluation."""

    split_fraction: float          # share of rows on the GPU
    gpu_ms: float
    cpu_ms: float
    output: np.ndarray = field(repr=False, default=None)

    @property
    def makespan_ms(self) -> float:
        return max(self.gpu_ms, self.cpu_ms)

    @property
    def balance(self) -> float:
        """1.0 = perfectly balanced; 0 = one side idle."""
        hi = self.makespan_ms
        return min(self.gpu_ms, self.cpu_ms) / hi if hi else 1.0


def _take_rows(p: GenericPattern, start: int, end: int) -> GenericPattern:
    if isinstance(p.X, CsrMatrix):
        Xb = p.X.row_block(start, end)
    else:
        Xb = np.asarray(p.X, dtype=np.float64)[start:end]
    vb = None if p.v is None else p.v[start:end]
    return GenericPattern(Xb, p.y, v=vb, alpha=1.0, beta=0.0)


@dataclass
class HybridExecutor:
    """Cost-model-driven row split between the fused GPU kernel and the CPU."""

    ctx: GpuContext = field(default_factory=lambda: DEFAULT_CONTEXT)
    cpu: CpuCostModel = field(default_factory=CpuCostModel)

    def __post_init__(self) -> None:
        self._gpu_plan = FusedPlan(self.ctx)
        self._cpu_plan = BidmatCpuPlan(self.cpu)

    # ------------------------------------------------------------------ #
    def estimate(self, p: GenericPattern, fraction: float) -> tuple[float,
                                                                    float]:
        """(gpu_ms, cpu_ms) estimate for a given GPU row share."""
        m = p.shape[0]
        split = int(round(m * fraction))
        gpu_ms = self._gpu_plan.evaluate(_take_rows(p, 0, split)).time_ms \
            if split > 0 else 0.0
        cpu_ms = self._cpu_plan.evaluate(_take_rows(p, split, m)).time_ms \
            if split < m else 0.0
        return gpu_ms, cpu_ms

    def optimal_split(self, p: GenericPattern,
                      probes: int = 7) -> float:
        """Find the makespan-minimizing GPU share.

        Uses the analytical ``c / (c + g)`` from single-processor probes,
        refined by a small golden-ratio-ish sweep (fixed costs make the
        makespan only piecewise smooth), and compares against the pure-GPU
        and pure-CPU endpoints.
        """
        g_full, _ = self.estimate(p, 1.0)
        _, c_full = self.estimate(p, 0.0)
        if g_full == 0.0 or c_full == 0.0:
            return 1.0 if c_full > 0 else 0.0
        # makespan max(f*g_full, (1-f)*c_full) is minimized where the two
        # sides meet: f* = c / (g + c)
        f_star = c_full / (g_full + c_full)
        # candidate fractions: the analytic point, endpoints, and a probe grid
        candidates = {0.0, 1.0, min(1.0, max(0.0, f_star))}
        candidates.update(np.linspace(0.5, 1.0, probes))
        best_f, best_t = 1.0, g_full
        for f in sorted(candidates):
            gpu_ms, cpu_ms = self.estimate(p, f)
            t = max(gpu_ms, cpu_ms)
            if t < best_t:
                best_f, best_t = f, t
        return best_f

    def evaluate(self, p: GenericPattern,
                 fraction: float | None = None) -> HybridReport:
        """Run the split execution and return the combined result."""
        if not p.inner:
            raise ValueError("hybrid executor handles inner patterns")
        m, n = p.shape
        if fraction is None:
            fraction = self.optimal_split(p)
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        split = int(round(m * fraction))

        w = np.zeros(n, dtype=np.float64)
        gpu_ms = cpu_ms = 0.0
        if split > 0:
            res = self._gpu_plan.evaluate(_take_rows(p, 0, split))
            w += res.output
            gpu_ms = res.time_ms
        if split < m:
            res = self._cpu_plan.evaluate(_take_rows(p, split, m))
            w += res.output
            cpu_ms = res.time_ms
        w *= p.alpha
        if p.beta != 0.0:
            w += p.beta * p.z
        return HybridReport(split_fraction=fraction, gpu_ms=gpu_ms,
                            cpu_ms=cpu_ms, output=w)
