"""The generic computational pattern (Eq. 1) and its Table-1 taxonomy.

``w = alpha * X^T x (v ⊙ (X x y)) + beta * z``

A :class:`GenericPattern` captures one concrete instance: the matrix, the
vectors that are present, and the scalars.  :func:`classify` maps an instance
onto the paper's Table 1 rows, and :data:`TABLE1` records which ML algorithms
use which instantiation — the coverage the ML layer's tests verify by
tracing actual algorithm executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..sparse.csr import CsrMatrix


class Instantiation(str, Enum):
    """Rows of Table 1 (plus the trivial SpMV, which the paper excludes)."""

    XT_Y = "alpha * X^T x y"
    XT_X_Y = "X^T x (X x y)"
    XT_V_X_Y = "X^T x (v . (X x y))"
    XT_X_Y_BZ = "X^T x (X x y) + beta * z"
    FULL = "X^T x (v . (X x y)) + beta * z"


#: Table 1 of the paper: instantiation -> ML algorithms that use it.
TABLE1: dict[Instantiation, frozenset[str]] = {
    Instantiation.XT_Y: frozenset({"LR", "GLM", "LogReg", "SVM", "HITS"}),
    Instantiation.XT_X_Y: frozenset({"LR", "GLM", "SVM", "HITS"}),
    Instantiation.XT_V_X_Y: frozenset({"GLM", "LogReg"}),
    Instantiation.XT_X_Y_BZ: frozenset({"LR", "SVM"}),
    Instantiation.FULL: frozenset({"LogReg"}),
}


@dataclass
class GenericPattern:
    """One concrete instance of Eq. 1.

    ``inner`` distinguishes the degenerate first row of Table 1: when False,
    the pattern is ``alpha * X^T x y`` with ``y`` of length m (no inner
    product ``X x y`` and no ``v``).
    """

    X: CsrMatrix | np.ndarray
    y: np.ndarray
    v: np.ndarray | None = None
    z: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0
    inner: bool = True

    def __post_init__(self) -> None:
        m, n = self.shape
        self.y = np.asarray(self.y, dtype=np.float64)
        expected = n if self.inner else m
        if self.y.shape != (expected,):
            raise ValueError(
                f"y must have shape ({expected},) for "
                f"{'inner' if self.inner else 'X^T-only'} patterns, "
                f"got {self.y.shape}")
        if self.v is not None:
            if not self.inner:
                raise ValueError("v is only meaningful with the inner X x y")
            self.v = np.asarray(self.v, dtype=np.float64)
            if self.v.shape != (m,):
                raise ValueError(f"v must have shape ({m},)")
        if self.z is not None:
            self.z = np.asarray(self.z, dtype=np.float64)
            if self.z.shape != (n,):
                raise ValueError(f"z must have shape ({n},)")
        if self.beta != 0.0 and self.z is None:
            raise ValueError("beta != 0 requires z")

    @property
    def shape(self) -> tuple[int, int]:
        if isinstance(self.X, CsrMatrix):
            return self.X.shape
        Xd = np.asarray(self.X)
        if Xd.ndim != 2:
            raise ValueError("X must be a CsrMatrix or a 2-D array")
        return Xd.shape

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.X, CsrMatrix)

    def classify(self) -> Instantiation:
        return classify(self)

    def reference(self) -> np.ndarray:
        """Ground-truth evaluation with NumPy (no simulation)."""
        from ..sparse.ops import fused_pattern_reference, spmv_t
        if not self.inner:
            if self.is_sparse:
                w = self.alpha * spmv_t(self.X, self.y)
            else:
                w = self.alpha * (np.asarray(self.X, dtype=np.float64).T
                                  @ self.y)
            if self.beta != 0.0:
                w = w + self.beta * self.z
            return w
        return fused_pattern_reference(self.X, self.y, self.v, self.z,
                                       self.alpha, self.beta)


def classify(p: GenericPattern) -> Instantiation:
    """Map a pattern instance to its Table-1 row."""
    has_v = p.v is not None
    has_z = p.beta != 0.0
    if not p.inner:
        if has_z:
            # X^T y + beta z is treated as the XT_Y row plus a BLAS-1 axpy
            return Instantiation.XT_Y
        return Instantiation.XT_Y
    if has_v and has_z:
        return Instantiation.FULL
    if has_v:
        return Instantiation.XT_V_X_Y
    if has_z:
        return Instantiation.XT_X_Y_BZ
    return Instantiation.XT_X_Y


def algorithms_using(inst: Instantiation) -> frozenset[str]:
    """Which of the paper's five ML algorithms use this instantiation."""
    return TABLE1[inst]
