"""Strategy selection and evaluation for the generic pattern.

:class:`PatternExecutor` is the façade downstream code (the ML layer, the
SystemML-like DAG runtime, the benchmarks) uses: it resolves a strategy name
to a plan, applies the paper's fallback rule for wide dense matrices (beyond
~6K columns the dense fused kernel would spill registers, so it falls back to
two cuBLAS launches), and verifies results against the NumPy reference when
``check=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.cpu import CpuCostModel
from ..kernels.base import DEFAULT_CONTEXT, GpuContext, KernelResult
from ..tuning.dense_params import MAX_THREAD_LOAD
from .pattern import GenericPattern
from .plans import (BidmatCpuPlan, BidmatGpuPlan, CusparsePlan,
                    ExplicitTransposePlan, FusedPlan, Plan)

STRATEGIES = ("fused", "cusparse", "cusparse-explicit", "bidmat-gpu",
              "bidmat-cpu", "auto")


@dataclass
class PatternExecutor:
    """Evaluate patterns under a named strategy with a shared GPU context."""

    ctx: GpuContext = field(default_factory=lambda: DEFAULT_CONTEXT)
    check: bool = False
    rtol: float = 1e-9
    atol: float = 1e-9

    def __post_init__(self) -> None:
        self._plans: dict[str, Plan] = {
            "fused": FusedPlan(self.ctx),
            "cusparse": CusparsePlan(self.ctx),
            "cusparse-explicit": ExplicitTransposePlan(self.ctx),
            "bidmat-gpu": BidmatGpuPlan(self.ctx),
            "bidmat-cpu": BidmatCpuPlan(CpuCostModel()),
        }

    def plan_for(self, p: GenericPattern, strategy: str) -> Plan:
        if strategy == "auto":
            strategy = self.choose_strategy(p)
        try:
            return self._plans[strategy]
        except KeyError:
            raise ValueError(
                f"unknown strategy {strategy!r}; one of {STRATEGIES}"
            ) from None

    def choose_strategy(self, p: GenericPattern) -> str:
        """The paper's dispatch rule: fuse unless dense and too wide."""
        m, n = p.shape
        if not p.is_sparse and n > MAX_THREAD_LOAD * 128:
            return "cusparse"       # register pressure: two cuBLAS launches
        return "fused"

    def evaluate(self, p: GenericPattern,
                 strategy: str = "auto") -> KernelResult:
        res = self.plan_for(p, strategy).evaluate(p)
        if self.check:
            ref = p.reference()
            if not np.allclose(res.output, ref, rtol=self.rtol,
                               atol=self.atol * max(
                                   1.0, float(np.abs(ref).max(initial=0.0)))):
                raise AssertionError(
                    f"strategy {strategy!r} diverged from reference "
                    f"(max err {np.abs(res.output - ref).max():.3g})")
        return res

    def compare(self, p: GenericPattern,
                strategies: tuple[str, ...] = ("fused", "cusparse",
                                               "bidmat-gpu", "bidmat-cpu")
                ) -> dict[str, KernelResult]:
        """Evaluate the same pattern under several strategies (bench helper)."""
        return {s: self.evaluate(p, s) for s in strategies}
