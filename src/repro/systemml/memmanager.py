"""GPU memory manager — the SystemML integration component of Section 4.4.

Implements the responsibilities the paper enumerates for its memory manager:

a) allocate device memory if not already allocated;
b) evict (LRU) when the device is full;
c) deallocate / mark blocks for reuse;
d) keep host and device copies consistent (dirty tracking, lazy sync);
e) convert between host and device layouts (SystemML's sparse-row format vs
   device CSR) — plus the JVM-heap -> native JNI copy that precedes every
   PCIe transfer in the Java system.

All activity is charged to a stats record in model milliseconds so Table 6's
"reduced end-to-end speedups point to inefficiencies in the memory manager
and data transformations" can be reproduced quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec, GTX_TITAN
from ..gpu.transfer import TransferModel


class OutOfDeviceMemory(RuntimeError):
    """Raised when a single block cannot fit even after evicting everything."""


@dataclass
class BlockState:
    """Bookkeeping for one logical data block (matrix or vector)."""

    key: str
    nbytes: float
    on_device: bool = False
    host_dirty: bool = False     # device copy newer than host
    device_dirty: bool = False   # host copy newer than device
    needs_conversion: bool = False
    pinned: bool = False
    last_use: int = 0


@dataclass
class MemStats:
    h2d_ms: float = 0.0
    d2h_ms: float = 0.0
    jni_ms: float = 0.0
    conversion_ms: float = 0.0
    h2d_count: int = 0
    d2h_count: int = 0
    evictions: int = 0
    allocations: int = 0

    @property
    def total_ms(self) -> float:
        return self.h2d_ms + self.d2h_ms + self.jni_ms + self.conversion_ms


class GpuMemoryManager:
    """LRU device-memory manager with dirty tracking and layout conversion."""

    def __init__(self, device: DeviceSpec = GTX_TITAN,
                 capacity_bytes: float | None = None,
                 via_jni: bool = False):
        self.device = device
        self.capacity = (capacity_bytes if capacity_bytes is not None
                         else device.global_memory_bytes * 0.9)
        self.transfer = TransferModel(device)
        self.via_jni = via_jni
        self.blocks: dict[str, BlockState] = {}
        self.stats = MemStats()
        self._clock = 0

    # ------------------------------------------------------------- queries --
    @property
    def used_bytes(self) -> float:
        return sum(b.nbytes for b in self.blocks.values() if b.on_device)

    @property
    def free_bytes(self) -> float:
        return self.capacity - self.used_bytes

    def is_resident(self, key: str) -> bool:
        b = self.blocks.get(key)
        return b is not None and b.on_device

    # ------------------------------------------------------------ registry --
    def register(self, key: str, nbytes: float,
                 needs_conversion: bool = False,
                 pinned: bool = False) -> BlockState:
        """Declare a host-side block the manager may later place on device."""
        if nbytes < 0:
            raise ValueError("block size must be non-negative")
        b = self.blocks.get(key)
        if b is None:
            b = BlockState(key, nbytes, needs_conversion=needs_conversion,
                           pinned=pinned)
            self.blocks[key] = b
        else:
            b.nbytes = nbytes
            b.needs_conversion = needs_conversion
        return b

    # ------------------------------------------------------------ placement --
    def request(self, key: str) -> float:
        """Ensure ``key`` is resident and current on device; return cost (ms).

        Task (a): allocate; (b): evict LRU victims if needed; (d): upload only
        if the device copy is missing or stale; (e): charge JNI + layout
        conversion on the way.
        """
        b = self.blocks.get(key)
        if b is None:
            raise KeyError(f"block {key!r} was never registered")
        self._clock += 1
        b.last_use = self._clock
        if b.on_device and not b.device_dirty:
            return 0.0
        cost = 0.0
        if not b.on_device:
            if b.nbytes > self.capacity:
                raise OutOfDeviceMemory(
                    f"block {key!r} ({b.nbytes / 1e9:.2f} GB) exceeds device "
                    f"capacity ({self.capacity / 1e9:.2f} GB)")
            cost += self._make_room(b.nbytes)
            self.stats.allocations += 1
        cost += self._upload(b)
        b.on_device = True
        b.device_dirty = False
        return cost

    def _upload(self, b: BlockState) -> float:
        ms = self.transfer.h2d_ms(b.nbytes, via_jni=self.via_jni,
                                  convert=b.needs_conversion)
        pcie = self.transfer.pcie_ms(b.nbytes)
        self.stats.h2d_ms += pcie
        self.stats.jni_ms += self.transfer.jni_ms(b.nbytes) \
            if self.via_jni else 0.0
        self.stats.conversion_ms += self.transfer.conversion_ms(b.nbytes) \
            if b.needs_conversion else 0.0
        self.stats.h2d_count += 1
        return ms

    def _make_room(self, needed: float) -> float:
        """Task (b): evict least-recently-used unpinned blocks."""
        cost = 0.0
        if needed <= self.free_bytes:
            return cost
        victims = sorted(
            (b for b in self.blocks.values() if b.on_device and not b.pinned),
            key=lambda b: b.last_use)
        for v in victims:
            if needed <= self.free_bytes:
                break
            cost += self.sync_to_host(v.key)
            v.on_device = False
            self.stats.evictions += 1
        if needed > self.free_bytes:
            raise OutOfDeviceMemory(
                f"cannot free {needed / 1e9:.2f} GB "
                f"(pinned blocks occupy the device)")
        return cost

    # ------------------------------------------------------- consistency ----
    def mark_device_dirty(self, key: str) -> None:
        """A kernel wrote this block on device; host copy is now stale."""
        b = self.blocks[key]
        if not b.on_device:
            raise ValueError(
                f"block {key!r} has no device copy to be dirtied — "
                "request() it before running kernels on it")
        b.host_dirty = True

    def mark_host_dirty(self, key: str) -> None:
        """Host code rewrote this block; any device copy is stale."""
        b = self.blocks[key]
        b.device_dirty = True

    def sync_to_host(self, key: str) -> float:
        """Task (d): download iff the device copy is newer."""
        b = self.blocks[key]
        if not (b.on_device and b.host_dirty):
            return 0.0
        ms = self.transfer.d2h_ms(b.nbytes, via_jni=self.via_jni)
        self.stats.d2h_ms += self.transfer.pcie_ms(b.nbytes)
        if self.via_jni:
            self.stats.jni_ms += self.transfer.jni_ms(b.nbytes)
        self.stats.d2h_count += 1
        b.host_dirty = False
        return ms

    def free(self, key: str) -> None:
        """Task (c): drop the device copy and forget the block."""
        self.blocks.pop(key, None)
