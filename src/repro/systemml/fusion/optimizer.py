"""Cost-based fusion-plan selection.

:func:`optimize` runs the full pipeline on an expression DAG: index the
graph, infer shapes, enumerate candidate regions, cost every candidate
(fused vs. unfused, on the exact counter model), and select a
conflict-free subset.  Small problems get an exhaustive search over all
conflict-free candidate subsets (the candidate count for realistic DML
expressions is tiny, so this is exact); DAGs above the node budget fall
back to a greedy best-saving-first sweep, recorded in
``FusionPlan.search`` so callers and tests can tell which path ran.

The returned :class:`FusionPlan` is cacheable: it carries its own
enumeration DAG and lazily lowers it once (`.lowered()`), and its
:func:`fingerprint_dag` key covers DAG topology, matrix *content*
fingerprints and vector lengths — per-iteration vector value changes
still hit the cached plan, while a different matrix or expression shape
misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...kernels.base import DEFAULT_CONTEXT, GpuContext
from ..dag import (Add, EwMul, FusedPattern, Input, MatVec, Node, Smul,
                   Transpose)
from .candidates import Candidate, enumerate_candidates
from .cost import CostEstimate, PlannedCandidate, cost_candidate
from .executor import evaluate_dag
from .graph import index_dag, infer_shapes
from .lower import lower


@dataclass
class FusionPlan:
    """The optimizer's decision for one expression DAG."""

    fingerprint: str
    expression: str
    node_count: int
    search: str                            # "exhaustive" | "greedy"
    candidates: list[PlannedCandidate]
    chosen: list[int]                      # indices into ``candidates``
    baseline: CostEstimate                 # whole-DAG unfused cost
    root: Node = field(repr=False)
    _lowered: Node | None = field(default=None, repr=False)

    def chosen_candidates(self) -> list[Candidate]:
        return [self.candidates[i].candidate for i in self.chosen]

    def lowered(self) -> Node:
        """The plan's DAG with chosen regions fused (lowered once)."""
        if self._lowered is None:
            self._lowered = lower(self.root, self.chosen_candidates())
        return self._lowered

    @property
    def saving_ms(self) -> float:
        return sum(self.candidates[i].saving_ms for i in self.chosen)

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "expression": self.expression,
            "node_count": self.node_count,
            "search": self.search,
            "baseline": self.baseline.to_dict(),
            "saving_ms": self.saving_ms,
            "chosen": self.chosen,
            "candidates": [pc.to_dict() for pc in self.candidates],
        }


def fingerprint_dag(root: Node, env: dict, device_fp: str = "") -> str:
    """Stable key for plan caching.

    Covers DAG topology (with sharing markers), operator parameters,
    matrix content fingerprints, and vector lengths — NOT vector values,
    so iterative solvers reuse one plan across iterations.
    """
    import hashlib

    from ...core.engine import fingerprint_matrix

    seen: dict[int, int] = {}
    parts: list[str] = [device_fp]

    def walk(nd: Node) -> str:
        if id(nd) in seen:
            return f"@{seen[id(nd)]}"
        seen[id(nd)] = len(seen)
        if isinstance(nd, Input):
            val = env.get(nd.name)
            if val is None:
                return f"in({nd.name})"
            from ...sparse.csr import CsrMatrix
            if isinstance(val, CsrMatrix):
                return f"in({nd.name},{fingerprint_matrix(val)})"
            import numpy as np
            arr = np.asarray(val)
            if arr.ndim == 1:              # vectors: length only, so an
                return f"in({nd.name},vec{arr.shape[0]})"  # iterative solver
            return f"in({nd.name},{fingerprint_matrix(arr)})"  # hits warm
        if isinstance(nd, Transpose):
            return f"t({walk(nd.child)})"
        if isinstance(nd, MatVec):
            return f"mv({walk(nd.mat)},{walk(nd.vec)})"
        if isinstance(nd, EwMul):
            return f"ew({walk(nd.a)},{walk(nd.b)})"
        if isinstance(nd, Add):
            return f"add({walk(nd.a)},{walk(nd.b)})"
        if isinstance(nd, Smul):
            return f"smul({nd.alpha!r},{walk(nd.x)})"
        if isinstance(nd, FusedPattern):
            inner = [walk(nd.X), walk(nd.y)]
            if nd.v is not None:
                inner.append(walk(nd.v))
            if nd.z is not None:
                inner.append(walk(nd.z))
            return (f"fp({','.join(inner)},{nd.alpha!r},{nd.beta!r},"
                    f"{nd.inner})")
        return f"{type(nd).__name__}({','.join(walk(c) for c in nd.inputs)})"

    parts.append(walk(root))
    return hashlib.blake2b("|".join(parts).encode(),
                           digest_size=16).hexdigest()


def _select_exhaustive(eligible: list[int],
                       planned: list[PlannedCandidate]) -> list[int]:
    """Exact max-total-saving conflict-free subset (DFS with memo-free
    branch and bound; eligible counts are single digits in practice)."""
    best: tuple[float, list[int]] = (0.0, [])

    def dfs(k: int, taken: list[int], members: frozenset[int],
            saving: float) -> None:
        nonlocal best
        if saving > best[0]:
            best = (saving, list(taken))
        if k == len(eligible):
            return
        # upper bound: all remaining savings are additive
        rest = sum(planned[i].saving_ms for i in eligible[k:])
        if saving + rest <= best[0]:
            return
        i = eligible[k]
        if not (members & planned[i].member_ids):
            taken.append(i)
            dfs(k + 1, taken, members | planned[i].member_ids,
                saving + planned[i].saving_ms)
            taken.pop()
        dfs(k + 1, taken, members, saving)

    dfs(0, [], frozenset(), 0.0)
    return sorted(best[1])


def _select_greedy(eligible: list[int],
                   planned: list[PlannedCandidate]) -> list[int]:
    chosen: list[int] = []
    members: frozenset[int] = frozenset()
    for i in sorted(eligible, key=lambda i: planned[i].saving_ms,
                    reverse=True):
        if not (members & planned[i].member_ids):
            chosen.append(i)
            members = members | planned[i].member_ids
    return sorted(chosen)


def optimize(root: Node, env: dict,
             ctx: GpuContext = DEFAULT_CONTEXT,
             engine=None,
             node_budget: int = 32,
             max_exhaustive: int = 12,
             expression: str = "") -> FusionPlan:
    """Enumerate, cost, and select fusions for ``root`` bound to ``env``."""
    index = index_dag(root)
    shapes = infer_shapes(index, env)
    candidates = enumerate_candidates(index, shapes)
    planned = [cost_candidate(c, env, shapes, index, ctx, engine)
               for c in candidates]

    baseline_results: list = []
    evaluate_dag(root, env, ctx, engine=engine, results=baseline_results)
    baseline = CostEstimate()
    for res in baseline_results:
        baseline.absorb(res)

    eligible = [i for i, pc in enumerate(planned) if pc.saving_ms > 0]
    if len(eligible) <= max_exhaustive and len(index.nodes) <= node_budget:
        search = "exhaustive"
        chosen = _select_exhaustive(eligible, planned)
    else:
        search = "greedy"
        chosen = _select_greedy(eligible, planned)

    device_fp = getattr(engine, "_device_fp", "")
    return FusionPlan(
        fingerprint=fingerprint_dag(root, env, device_fp),
        expression=expression or repr(root),
        node_count=len(index.nodes),
        search=search,
        candidates=planned,
        chosen=chosen,
        baseline=baseline,
        root=root)
