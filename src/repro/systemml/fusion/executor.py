"""Kernel-level execution of (possibly lowered) expression DAGs.

:func:`evaluate_dag` walks a DAG once (id-memoized, so diamonds evaluate
shared values once) and dispatches every node to the same simulated-kernel
layer the rest of the repo uses — csrmv/gemv for matrix-vector products,
BLAS-1 for cell-wise operators, the fused kernel families for fused nodes.
Numerics are bit-identical to ``root.eval(env)``: each kernel performs the
same NumPy operations in the same order as the node's own ``eval``.

Every launched kernel's :class:`~repro.kernels.base.KernelResult` can be
collected (``results=[]``) — the cost model reads the counters off the
identical dispatch path, which is what makes predicted and executed
transaction counts exactly equal.
"""

from __future__ import annotations

import numpy as np

from ...core.executor import PatternExecutor
from ...core.pattern import GenericPattern
from ...kernels import blas1
from ...kernels.base import DEFAULT_CONTEXT, GpuContext, KernelResult
from ...kernels.cellwise import fused_cellwise, fused_rowagg
from ...kernels.dense_baseline import gemv_n, gemv_t
from ...kernels.sparse_baseline import csrmv, csrmv_transpose
from ...sparse.csr import CsrMatrix
from ..dag import (Add, EwMul, FusedPattern, Input, MatVec, Node, Smul,
                   Transpose)
from .lower import FusedCellwise, FusedRowAgg

#: ledger category per op family (mirrors MLRuntime's accounting)
_CATEGORY = {"pattern": "pattern", "mv": "mv", "blas1": "blas1"}


def evaluate_dag(root: Node, env: dict,
                 ctx: GpuContext = DEFAULT_CONTEXT,
                 engine=None,
                 results: list[KernelResult] | None = None,
                 ledger=None) -> np.ndarray:
    """Execute a DAG on the kernel layer; returns the root's value.

    ``engine`` (a :class:`~repro.core.engine.PatternEngine`) serves
    Eq.-1 ``FusedPattern`` nodes through the session cache when given;
    ``results`` collects every KernelResult; ``ledger`` (a
    :class:`~repro.ml.runtime.TimeLedger`) is charged per kernel.
    """
    memo: dict[int, object] = {}

    def record(res: KernelResult, category: str):
        if results is not None:
            results.append(res)
        if ledger is not None:
            ledger.charge(category, res.time_ms)
        return res.output

    def ev(nd: Node):
        if id(nd) in memo:
            return memo[id(nd)]
        val = _dispatch(nd, ev, env, ctx, engine, record)
        memo[id(nd)] = val
        return val

    return ev(root)


def _vec(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def _matvec(X, y, transpose: bool, ctx: GpuContext,
            engine=None) -> KernelResult:
    if isinstance(X, CsrMatrix):
        # engine-pinned matrices dispatch through the cached AOT bundle
        # (hash-free lookup; None when unpinned or not yet compiled)
        compiled = (engine.compiled_for_pinned(X)
                    if engine is not None else None)
        if transpose:
            return csrmv_transpose(X, y, ctx, compiled=compiled)
        return csrmv(X, y, ctx, texture=ctx.use_texture_cache,
                     compiled=compiled)
    Xd = np.asarray(X, dtype=np.float64)
    return gemv_t(Xd, y, ctx) if transpose else gemv_n(Xd, y, ctx)


def _dispatch(nd: Node, ev, env: dict, ctx: GpuContext, engine, record):
    if isinstance(nd, Input):
        return nd.eval(env)
    if isinstance(nd, MatVec):
        y = _vec(ev(nd.vec))
        if isinstance(nd.mat, Transpose):
            return record(_matvec(ev(nd.mat.child), y, True, ctx, engine),
                          "mv")
        return record(_matvec(ev(nd.mat), y, False, ctx, engine), "mv")
    if isinstance(nd, EwMul):
        return record(blas1.ewmul(_vec(ev(nd.a)), _vec(ev(nd.b)), ctx),
                      "blas1")
    if isinstance(nd, Add):
        # axpy with alpha=1: `1.0 * a + b` is bitwise `a + b`
        return record(blas1.axpy(1.0, _vec(ev(nd.a)), _vec(ev(nd.b)), ctx),
                      "blas1")
    if isinstance(nd, Smul):
        return record(blas1.scal(nd.alpha, _vec(ev(nd.x)), ctx), "blas1")
    if isinstance(nd, FusedPattern):
        p = GenericPattern(
            ev(nd.X), _vec(ev(nd.y)),
            v=None if nd.v is None else _vec(ev(nd.v)),
            z=None if nd.z is None else _vec(ev(nd.z)),
            alpha=nd.alpha, beta=nd.beta, inner=nd.inner)
        if engine is not None:
            res = engine.evaluate_pattern(p, "fused")
        else:
            res = PatternExecutor(ctx).plan_for(p, "fused").evaluate(p)
        return record(res, "pattern")
    if isinstance(nd, FusedCellwise):
        vals = [_vec(ev(o)) for o in nd.operands]
        return record(fused_cellwise(nd.program, vals, ctx), "pattern")
    if isinstance(nd, FusedRowAgg):
        X = ev(nd.mat)
        y = _vec(ev(nd.vec))
        extras = [_vec(ev(e)) for e in nd.extras]
        compiled = (engine.compiled_for_pinned(X)
                    if engine is not None and isinstance(X, CsrMatrix)
                    else None)
        return record(fused_rowagg(X, y, nd.program, extras, ctx,
                                   transpose=nd.transpose,
                                   compiled=compiled), "pattern")
    # unknown node types fall back to their own reference eval
    return nd.eval(env)
