"""Cost-based DAG fusion-plan optimizer (see DESIGN.md §3.6).

Pipeline: :func:`index_dag` → :func:`infer_shapes` →
:func:`enumerate_candidates` → :func:`cost_candidate` →
:func:`optimize` → :meth:`FusionPlan.lowered` → :func:`evaluate_dag`.
"""

from .candidates import Candidate, enumerate_candidates
from .cost import CostEstimate, PlannedCandidate, cost_candidate
from .executor import evaluate_dag
from .graph import DagIndex, index_dag, infer_shapes
from .lower import FusedCellwise, FusedRowAgg, clone_dag, lower
from .optimizer import FusionPlan, fingerprint_dag, optimize
from .scripts import COLS, ROWS, SHIPPED_DML, ScriptSpec, infer_roles, make_env

__all__ = [
    "COLS",
    "Candidate",
    "CostEstimate",
    "DagIndex",
    "FusedCellwise",
    "FusedRowAgg",
    "FusionPlan",
    "PlannedCandidate",
    "ROWS",
    "SHIPPED_DML",
    "ScriptSpec",
    "clone_dag",
    "cost_candidate",
    "enumerate_candidates",
    "evaluate_dag",
    "fingerprint_dag",
    "index_dag",
    "infer_roles",
    "infer_shapes",
    "lower",
    "make_env",
    "optimize",
]
