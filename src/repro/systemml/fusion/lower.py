"""Lowering: replace chosen candidate regions with fused DAG nodes.

The lowered DAG is a *clone* — the input DAG is never mutated (unlike the
in-place pattern rewriter), so callers can lower the same expression under
different plans, and shared nodes stay shared through the id-memoized
clone.  Two new node types carry optimizer-chosen regions:

* :class:`FusedCellwise` — a cell-wise region executed as one generated
  streaming kernel;
* :class:`FusedRowAgg` — a matrix-vector product with its cell-wise
  epilogue folded into the producing kernel.

Eq.-1-shaped regions lower onto the existing
:class:`~repro.systemml.dag.FusedPattern`, exactly as the hand-written
rewriter produces — `fuse="auto"` rediscovering the paper's fusion means
the lowered DAG is indistinguishable from the pattern-matched one.

``eval`` on both new node types interprets the region's
:class:`~repro.kernels.cellwise.CellwiseProgram` with the same operation
order as the generated kernel, so plain ``root.eval(env)`` on a lowered
DAG is bit-identical to executing it through the kernel layer.

Lowered plans also pick up the AOT sparse-kernel layer transparently: when
the DAG executor (:mod:`.executor`) runs a lowered node over a sparse
matrix that is *pinned* on the session engine, the matvec inside
``FusedRowAgg``/``MatVec`` — and the Eq.-1 ``FusedPattern`` path through
the engine — dispatches to the engine-cached
:class:`~repro.kernels.codegen.CompiledSparseKernels` bundle instead of
interpreted kernels, with bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...kernels.cellwise import CellwiseProgram
from ...sparse.csr import CsrMatrix
from ...sparse.ops import spmv, spmv_t
from ..dag import (Add, EwMul, FusedPattern, Input, MatVec, Node, Smul,
                   Transpose)
from .candidates import Candidate


@dataclass(eq=False)
class FusedCellwise(Node):
    """An optimizer-chosen cell-wise region as a single fused node."""

    program: CellwiseProgram
    operands: tuple[Node, ...]

    def __post_init__(self) -> None:
        self.inputs = tuple(self.operands)

    def eval(self, env):
        vals = [np.asarray(o.eval(env), dtype=np.float64)
                for o in self.operands]
        return self.program.interpret(vals)

    def __repr__(self) -> str:
        return (f"FusedCellwise({self.program.describe()}, "
                f"{len(self.operands)} operands)")


@dataclass(eq=False)
class FusedRowAgg(Node):
    """A matrix-vector product with a fused cell-wise epilogue.

    ``program`` input 0 is the matvec result; inputs ``1..k`` bind to
    ``extras``.  ``transpose`` selects ``X^T %*% vec``.
    """

    mat: Node
    vec: Node
    program: CellwiseProgram
    extras: tuple[Node, ...]
    transpose: bool = False

    def __post_init__(self) -> None:
        self.inputs = (self.mat, self.vec, *self.extras)

    def eval(self, env):
        X = self.mat.eval(env)
        y = np.asarray(self.vec.eval(env), dtype=np.float64)
        if isinstance(X, CsrMatrix):
            base = spmv_t(X, y) if self.transpose else spmv(X, y)
        else:
            Xd = np.asarray(X, dtype=np.float64)
            base = Xd.T @ y if self.transpose else Xd @ y
        vals = [base] + [np.asarray(e.eval(env), dtype=np.float64)
                         for e in self.extras]
        return self.program.interpret(vals)

    def __repr__(self) -> str:
        op = "t(X) %*% v" if self.transpose else "X %*% v"
        return f"FusedRowAgg({op} -> {self.program.describe()})"


def clone_dag(root: Node) -> Node:
    """Deep-copy a DAG preserving sharing (Input leaves are reused)."""
    return _clone(root, {})


def _clone(nd: Node, memo: dict[int, Node]) -> Node:
    if id(nd) in memo:
        return memo[id(nd)]
    new = _clone_node(nd, lambda c: _clone(c, memo))
    memo[id(nd)] = new
    return new


def _clone_node(nd: Node, cl) -> Node:
    if isinstance(nd, Input):
        return nd                           # leaves are immutable bindings
    if isinstance(nd, Transpose):
        return Transpose(cl(nd.child))
    if isinstance(nd, MatVec):
        return MatVec(cl(nd.mat), cl(nd.vec))
    if isinstance(nd, EwMul):
        return EwMul(cl(nd.a), cl(nd.b))
    if isinstance(nd, Add):
        return Add(cl(nd.a), cl(nd.b))
    if isinstance(nd, Smul):
        return Smul(nd.alpha, cl(nd.x))
    if isinstance(nd, FusedPattern):
        return FusedPattern(cl(nd.X), cl(nd.y),
                            v=None if nd.v is None else cl(nd.v),
                            z=None if nd.z is None else cl(nd.z),
                            alpha=nd.alpha, beta=nd.beta, inner=nd.inner)
    if isinstance(nd, FusedCellwise):
        return FusedCellwise(nd.program, tuple(cl(o) for o in nd.operands))
    if isinstance(nd, FusedRowAgg):
        return FusedRowAgg(cl(nd.mat), cl(nd.vec), nd.program,
                           tuple(cl(e) for e in nd.extras), nd.transpose)
    raise TypeError(f"cannot clone {type(nd).__name__}")


def lower(root: Node, chosen: list[Candidate]) -> Node:
    """Clone the DAG, replacing each chosen candidate's region with its
    fused node.  Candidates must be conflict-free (disjoint members) —
    the optimizer's selection guarantees that."""
    by_root = {id(c.root): c for c in chosen}
    memo: dict[int, Node] = {}

    def cl(nd: Node) -> Node:
        if id(nd) in memo:
            return memo[id(nd)]
        cand = by_root.get(id(nd))
        if cand is not None:
            new = _lower_candidate(cand, cl)
        else:
            new = _clone_node(nd, cl)
        memo[id(nd)] = new
        return new

    return cl(root)


def _lower_candidate(c: Candidate, cl) -> Node:
    if c.kind == "eq1":
        return FusedPattern(cl(c.X), cl(c.y),
                            v=None if c.v is None else cl(c.v),
                            z=None if c.z is None else cl(c.z),
                            alpha=c.alpha, beta=c.beta, inner=c.inner)
    if c.kind == "cellwise":
        return FusedCellwise(c.program, tuple(cl(o) for o in c.operands))
    if c.kind == "rowagg":
        mat = c.mv.mat.child if isinstance(c.mv.mat, Transpose) else c.mv.mat
        return FusedRowAgg(cl(mat), cl(c.mv.vec), c.program,
                           tuple(cl(e) for e in c.operands[1:]),
                           transpose=isinstance(c.mv.mat, Transpose))
    raise ValueError(f"unknown candidate kind {c.kind!r}")
