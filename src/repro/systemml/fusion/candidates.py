"""Candidate fusion-plan enumeration over an expression DAG.

Three region shapes are discovered, mirroring the generalization of the
paper's single Eq.-1 pattern into enumerated fusion plans (Boehm et al.,
arXiv:1801.00829):

* ``eq1`` — the full ``alpha * X^T (v ⊙ (X y)) + beta * z`` family (every
  Table-1 instantiation), matched exactly like the hand-written rewriter
  but *non-mutating* and with an explicit member list;
* ``cellwise`` — maximal single-exit regions of vector ``{+, *, alpha*}``
  operators.  A node joins a region only when **all** of its consumers are
  already inside: a diamond (an interior value also consumed elsewhere)
  stops the region at that edge and the shared value becomes a region
  input, i.e. it is materialized for the outside consumer;
* ``rowagg`` — a cell-wise region absorbing one feeding matrix-vector
  product that has no consumer outside the region, folding the epilogue
  into the producing kernel.

Every candidate records the exact ``members`` its fusion would erase, so
the optimizer can reject overlapping selections and tests can execute each
candidate in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...kernels.cellwise import CellwiseProgram
from ..dag import Add, EwMul, Input, MatVec, Node, Smul, Transpose
from ..rewriter import _references_matrix, _same_matrix, _strip_smul
from .graph import MAT, VEC, DagIndex

_CELL_OPS = (EwMul, Add, Smul)


@dataclass
class Candidate:
    """One fusable region: what it computes and which nodes it replaces."""

    kind: str                              # "eq1" | "cellwise" | "rowagg"
    root: Node
    members: tuple[Node, ...]              # nodes erased by the fusion
    label: str
    # eq1 bindings
    X: Input | None = None
    y: Node | None = None
    v: Node | None = None
    z: Node | None = None
    alpha: float = 1.0
    beta: float = 0.0
    inner: bool = True
    # cellwise / rowagg bindings
    program: CellwiseProgram | None = None
    operands: tuple[Node, ...] = ()        # region inputs, program order
    mv: MatVec | None = None               # rowagg: the absorbed matvec
    member_ids: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.member_ids:
            self.member_ids = frozenset(id(m) for m in self.members)

    def conflicts_with(self, other: "Candidate") -> bool:
        return bool(self.member_ids & other.member_ids)


def enumerate_candidates(index: DagIndex,
                         shapes: dict[int, tuple]) -> list[Candidate]:
    """All fusable candidate regions in the DAG, in discovery order."""
    out: list[Candidate] = []
    for nd in index.nodes:
        cand = _match_eq1(nd, index, shapes)
        if cand is not None:
            out.append(cand)
    out.extend(_cellwise_candidates(index, shapes))
    return out


# ------------------------------------------------------------------- eq1 --
@dataclass
class _CoreMatch:
    X: Input
    y: Node
    v: Node | None
    inner: bool
    members: list[Node]                    # MatVec core, Transpose, inner


def _match_eq1_core(node: Node) -> _CoreMatch | None:
    """``t(X) %*% <inner>`` with member tracking (rewriter's match, made
    non-mutating; the probe order over EwMul sides matches exactly)."""
    if not isinstance(node, MatVec) or not isinstance(node.mat, Transpose):
        return None
    xt = node.mat.child
    if not isinstance(xt, Input):
        return None
    inner = node.vec
    if isinstance(inner, EwMul):
        for v_node, mv in ((inner.a, inner.b), (inner.b, inner.a)):
            if (isinstance(mv, MatVec) and isinstance(mv.mat, Input)
                    and _same_matrix(mv.mat, xt)):
                return _CoreMatch(xt, mv.vec, v_node, True,
                                  [node, node.mat, inner, mv])
        return None
    if (isinstance(inner, MatVec) and isinstance(inner.mat, Input)
            and _same_matrix(inner.mat, xt)):
        return _CoreMatch(xt, inner.vec, None, True,
                          [node, node.mat, inner])
    return _CoreMatch(xt, inner, None, False, [node, node.mat])


def _smul_chain(top: Node, core: Node) -> list[Node]:
    """The Smul wrappers from ``top`` down to (excluding) ``core``."""
    chain = []
    nd = top
    while nd is not core:
        chain.append(nd)
        nd = nd.x                          # _strip_smul guarantees Smul
    return chain


def _eq1_shapes_ok(m: _CoreMatch, z: Node | None,
                   shapes: dict[int, tuple]) -> bool:
    sx = shapes.get(id(m.X))
    if sx is None or sx[0] != MAT:
        return False
    rows, cols = sx[1], sx[2]
    sy = shapes.get(id(m.y))
    if sy != (VEC, cols if m.inner else rows):
        return False
    if m.v is not None and shapes.get(id(m.v)) != (VEC, rows):
        return False
    if z is not None and shapes.get(id(z)) != (VEC, cols):
        return False
    return True


def _interior_guarded(members: list[Node], root: Node,
                      index: DagIndex) -> bool:
    """Every non-root member must be consumed only inside the region —
    fusing would otherwise erase a value an outside consumer needs."""
    mids = {id(m) for m in members}
    for m in members:
        if m is root:
            continue
        if any(id(p) not in mids for p in index.parents.get(id(m), [])):
            return False
    return True


def _match_eq1(nd: Node, index: DagIndex,
               shapes: dict[int, tuple]) -> Candidate | None:
    if isinstance(nd, Add):
        for core_side, z_side in ((nd.a, nd.b), (nd.b, nd.a)):
            alpha, core = _strip_smul(core_side)
            m = _match_eq1_core(core)
            if m is None:
                continue
            beta, z_node = _strip_smul(z_side)
            if beta == 0.0 or _references_matrix(z_node, m.X):
                continue
            if not _eq1_shapes_ok(m, z_node, shapes):
                continue
            members = ([nd] + _smul_chain(core_side, core)
                       + _smul_chain(z_side, z_node) + m.members)
            if not _interior_guarded(members, nd, index):
                return None
            return Candidate(
                kind="eq1", root=nd, members=tuple(members),
                label=_eq1_label(alpha, m, beta), X=m.X, y=m.y, v=m.v,
                z=z_node, alpha=alpha, beta=beta, inner=m.inner)
        return None
    alpha, core = _strip_smul(nd)
    m = _match_eq1_core(core)
    if m is None or not _eq1_shapes_ok(m, None, shapes):
        return None
    members = _smul_chain(nd, core) + m.members
    if not _interior_guarded(members, nd, index):
        return None
    return Candidate(kind="eq1", root=nd, members=tuple(members),
                     label=_eq1_label(alpha, m, 0.0), X=m.X, y=m.y, v=m.v,
                     alpha=alpha, inner=m.inner)


def _eq1_label(alpha: float, m: _CoreMatch, beta: float) -> str:
    core = ("t(X) %*% (v * (X %*% y))" if m.v is not None
            else "t(X) %*% (X %*% y)" if m.inner else "t(X) %*% y")
    parts = [core if alpha == 1.0 else f"{alpha:g} * {core}"]
    if beta != 0.0:
        parts.append(f"{beta:g} * z")
    return "eq1: " + " + ".join(parts)


# -------------------------------------------------------------- cellwise --
def _is_cell(nd: Node, shapes: dict[int, tuple]) -> bool:
    s = shapes.get(id(nd))
    return isinstance(nd, _CELL_OPS) and s is not None and s[0] == VEC


def _grow_region(root: Node, index: DagIndex,
                 shapes: dict[int, tuple]) -> list[Node]:
    """Maximal single-exit region: a node joins only when all its
    consumers are already members (the diamond-materialization rule)."""
    region = {id(root)}
    members = [root]
    changed = True
    while changed:
        changed = False
        for m in list(members):
            for child in m.inputs:
                if id(child) in region or not _is_cell(child, shapes):
                    continue
                if all(id(p) in region
                       for p in index.parents.get(id(child), [])):
                    region.add(id(child))
                    members.append(child)
                    changed = True
    return members


def _build_program(root: Node, region_ids: set[int]) \
        -> tuple[CellwiseProgram, list[Node]]:
    """Region expression tree + its operand nodes in first-use order.

    Operands are deduplicated by node identity: a region input consumed
    twice inside the region is read from memory once by the fused kernel.
    """
    operands: list[Node] = []
    op_index: dict[int, int] = {}

    def rec(nd: Node) -> tuple:
        if id(nd) not in region_ids:
            if id(nd) not in op_index:
                op_index[id(nd)] = len(operands)
                operands.append(nd)
            return ("in", op_index[id(nd)])
        if isinstance(nd, Smul):
            return ("smul", float(nd.alpha), rec(nd.x))
        if isinstance(nd, EwMul):
            return ("ewmul", rec(nd.a), rec(nd.b))
        if isinstance(nd, Add):
            return ("add", rec(nd.a), rec(nd.b))
        raise TypeError(f"non-cellwise member {type(nd).__name__}")

    expr = rec(root)
    return CellwiseProgram(expr, len(operands)), operands


def _cellwise_candidates(index: DagIndex,
                         shapes: dict[int, tuple]) -> list[Candidate]:
    out: list[Candidate] = []
    assigned: set[int] = set()
    for nd in reversed(index.nodes):       # parents before children
        if id(nd) in assigned or not _is_cell(nd, shapes):
            continue
        members = _grow_region(nd, index, shapes)
        assigned.update(id(m) for m in members)
        region_ids = {id(m) for m in members}
        program, operands = _build_program(nd, region_ids)
        if program.op_count >= 2:
            out.append(Candidate(
                kind="cellwise", root=nd, members=tuple(members),
                label=f"cellwise: {program.describe()}",
                program=program, operands=tuple(operands)))
        ra = _rowagg_from_region(nd, members, operands, region_ids,
                                 index, shapes)
        if ra is not None:
            out.append(ra)
    return out


def _rowagg_from_region(root: Node, members: list[Node],
                        operands: list[Node], region_ids: set[int],
                        index: DagIndex,
                        shapes: dict[int, tuple]) -> Candidate | None:
    """Absorb one feeding MatVec whose only consumers are in the region."""
    for mv in operands:
        if not isinstance(mv, MatVec):
            continue
        if not all(id(p) in region_ids
                   for p in index.parents.get(id(mv), [])):
            continue                       # materialized for an outsider
        mat = mv.mat
        if isinstance(mat, Transpose):
            base = mat.child
            # the Transpose node is erased too: it must feed only this mv
            if not isinstance(base, Input) or any(
                    p is not mv for p in index.parents.get(id(mat), [])):
                continue
        elif not isinstance(mat, Input):
            continue
        if shapes.get(id(mv), (None,))[0] != VEC:
            continue
        # rebuild the program with the matvec result as input 0
        order = [mv] + [o for o in operands if o is not mv]
        remap = {id(o): k for k, o in enumerate(order)}
        program, _ = _build_program(root, region_ids)
        expr = _remap_inputs(program.expr, operands, remap)
        new_program = CellwiseProgram(expr, len(order))
        ra_members = list(members) + [mv]
        if isinstance(mat, Transpose):
            ra_members.append(mat)
        op = "t(X) %*% ." if isinstance(mat, Transpose) else "X %*% ."
        return Candidate(
            kind="rowagg", root=root, members=tuple(ra_members),
            label=f"rowagg: {op} -> {new_program.describe()}",
            program=new_program, operands=tuple(order), mv=mv)
    return None


def _remap_inputs(expr: tuple, operands: list[Node],
                  remap: dict[int, int]) -> tuple:
    if expr[0] == "in":
        return ("in", remap[id(operands[expr[1]])])
    if expr[0] == "smul":
        return ("smul", expr[1], _remap_inputs(expr[2], operands, remap))
    return (expr[0], _remap_inputs(expr[1], operands, remap),
            _remap_inputs(expr[2], operands, remap))
