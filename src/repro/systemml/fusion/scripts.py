"""Shipped DML expressions for the planner and its tests.

Each spec is the per-iteration core expression of one of the paper's
workloads (Table 1), written in the DML subset the parser accepts.
``make_env`` binds a spec to a concrete matrix plus seeded random
vectors whose lengths follow each name's inferred role, so the planner,
parity tests, CLI, and benchmarks all drive identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...sparse.csr import CsrMatrix
from ..dag import Input, MatVec, Node, Transpose
from ..parser import parse_expression

#: vector roles: length follows the matrix's rows or cols
ROWS = "rows"
COLS = "cols"


@dataclass(frozen=True)
class ScriptSpec:
    """One shipped DML expression with its vector-role bindings."""

    name: str
    dml: str
    roles: dict[str, str]                  # vector name -> ROWS | COLS
    note: str = ""

    def parse(self) -> Node:
        return parse_expression(self.dml)


SHIPPED_DML: dict[str, ScriptSpec] = {
    spec.name: spec for spec in (
        ScriptSpec(
            "linreg-cg",
            "t(X) %*% (X %*% p) + 0.001 * p",
            {"p": COLS},
            "LinregCG q-update: Eq. 1 with v = 1, beta = lambda"),
        ScriptSpec(
            "logreg",
            "t(X) %*% (w * (X %*% p)) + 0.001 * p",
            {"p": COLS, "w": ROWS},
            "LogReg trust-region Hessian-vector product: full Eq. 1"),
        ScriptSpec(
            "svm",
            "t(X) %*% (s * (X %*% w))",
            {"w": COLS, "s": ROWS},
            "L2SVM Hessian-vector core: Eq. 1 with beta = 0"),
        ScriptSpec(
            "cg-update",
            "r + 0.25 * q - 0.1 * p",
            {"r": COLS, "q": COLS, "p": COLS},
            "CG vector update: pure cell-wise chain"),
        ScriptSpec(
            "row-scale",
            "u * (X %*% p) + 0.5 * u",
            {"u": ROWS, "p": COLS},
            "row-aggregation: matvec with fused cell-wise epilogue"),
    )
}


def infer_roles(root: Node) -> dict[str, str]:
    """Derive each vector Input's role (ROWS/COLS) for ``--expr`` DAGs.

    MatVec edges pin roles exactly: ``X %*% v`` needs ``len(v) == cols``
    and produces a rows-length vector; ``t(X) %*% v`` the reverse.
    Cell-wise operators propagate the role across their operands (their
    shapes must agree).  Unconstrained vectors default to COLS.
    """
    roles: dict[str, str] = {}
    groups: list[set[str]] = []            # names that must share a role

    def vec_names(nd: Node) -> set[str]:
        if isinstance(nd, Input):
            return {nd.name}
        if isinstance(nd, MatVec):
            return set()                   # produces a new vector
        out: set[str] = set()
        for c in nd.inputs:
            out |= vec_names(c)
        return out

    def walk(nd: Node) -> str | None:
        """Returns the role of nd's (vector) result when known."""
        if isinstance(nd, Input):
            return roles.get(nd.name)
        if isinstance(nd, MatVec):
            transpose = isinstance(nd.mat, Transpose)
            for name in vec_names(nd.vec):
                roles.setdefault(name, ROWS if transpose else COLS)
            walk(nd.vec)
            return COLS if transpose else ROWS
        result = None
        for c in nd.inputs:
            r = walk(c)
            if r is not None:
                result = r
        names = vec_names(nd)
        if names:
            groups.append(names)
            if result is not None:
                for name in names:
                    roles.setdefault(name, result)
        return result

    walk(root)
    # propagate within same-shape groups, then default the rest
    for g in groups:
        known = {roles[n] for n in g if n in roles}
        if len(known) == 1:
            for n in g:
                roles.setdefault(n, next(iter(known)))
    for g in groups:
        for n in g:
            roles.setdefault(n, COLS)
    return roles


def make_env(spec_or_roles, X: CsrMatrix | np.ndarray,
             rng: np.random.Generator | int = 0,
             matrix_name: str = "X") -> dict:
    """Bind a spec (or a roles dict) to ``X`` plus seeded random vectors."""
    roles = (spec_or_roles.roles if isinstance(spec_or_roles, ScriptSpec)
             else dict(spec_or_roles))
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    m, n = X.shape
    env: dict = {matrix_name: X}
    for name, role in sorted(roles.items()):
        if name == matrix_name:
            continue
        env[name] = rng.standard_normal(m if role == ROWS else n)
    return env
