"""Candidate costing with the exact counter/transaction model.

Each candidate is costed by *running* both of its execution forms through
the same simulated-kernel dispatch the executor uses — the fused kernel
for the region, and one kernel per member operator for the unfused form —
and reading the recorded :class:`~repro.gpu.counters.PerfCounters` plus
the cost model's time off the results.  Because every counter in the
simulation depends only on matrix structure, vector lengths, and launch
geometry (never on values), the predicted counts are *exactly* the counts
a later execution records — ``tests/test_fusion_cost.py`` asserts
field-by-field equality against replayed executions.

On top of the transaction model, each unfused estimate carries the bytes
of materialized intermediates the fusion would eliminate (the paper's
Figure-2 "global load transactions" story, stated in bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.executor import PatternExecutor
from ...core.pattern import GenericPattern
from ...gpu.counters import PerfCounters
from ...kernels import blas1
from ...kernels.base import DEFAULT_CONTEXT, GpuContext, KernelResult
from ...kernels.cellwise import fused_cellwise, fused_rowagg
from ..dag import Add, EwMul, Input, MatVec, Node, Smul, Transpose
from .candidates import Candidate
from .executor import _matvec, _vec
from .graph import DagIndex, VEC

_D = 8


@dataclass
class CostEstimate:
    """Aggregate model cost of one execution form of a region."""

    time_ms: float = 0.0
    transactions: float = 0.0
    launches: float = 0.0
    flops: float = 0.0
    intermediate_bytes: float = 0.0

    def absorb(self, res: KernelResult) -> None:
        self.time_ms += res.time_ms
        self.transactions += res.counters.global_transactions
        self.launches += res.counters.kernel_launches
        self.flops += res.counters.flops

    def to_dict(self) -> dict[str, float]:
        return {"time_ms": self.time_ms, "transactions": self.transactions,
                "launches": self.launches, "flops": self.flops,
                "intermediate_bytes": self.intermediate_bytes}


@dataclass
class PlannedCandidate:
    """A candidate with both execution forms costed."""

    candidate: Candidate
    fused: CostEstimate
    unfused: CostEstimate
    fused_counters: PerfCounters
    unfused_counters: PerfCounters

    @property
    def saving_ms(self) -> float:
        return self.unfused.time_ms - self.fused.time_ms

    @property
    def member_ids(self) -> frozenset[int]:
        return self.candidate.member_ids

    def to_dict(self) -> dict:
        c = self.candidate
        return {"kind": c.kind, "label": c.label,
                "members": len(c.members),
                "fused": self.fused.to_dict(),
                "unfused": self.unfused.to_dict(),
                "saving_ms": self.saving_ms}


def _probe_value(nd: Node, env: dict, shapes: dict[int, tuple]):
    """A structurally faithful stand-in for a region input's value.

    Matrices come from the environment (counters depend on their sparsity
    structure); vectors are zero probes of the inferred length (counters
    are value-independent, so zeros cost exactly what real data costs).
    """
    if isinstance(nd, Input) and nd.name in env:
        return env[nd.name]
    s = shapes.get(id(nd))
    if s is not None and s[0] == VEC:
        return np.zeros(s[1], dtype=np.float64)
    raise ValueError(f"cannot build probe for {nd!r}")


def _run_fused(c: Candidate, env: dict, shapes: dict[int, tuple],
               ctx: GpuContext, engine) -> KernelResult:
    """Execute the candidate's fused form on probe inputs."""
    if c.kind == "eq1":
        p = GenericPattern(
            _probe_value(c.X, env, shapes), _vec(_probe_value(c.y, env,
                                                              shapes)),
            v=None if c.v is None else _vec(_probe_value(c.v, env, shapes)),
            z=None if c.z is None else _vec(_probe_value(c.z, env, shapes)),
            alpha=c.alpha, beta=c.beta, inner=c.inner)
        if engine is not None:
            return engine.evaluate_pattern(p, "fused")
        return PatternExecutor(ctx).plan_for(p, "fused").evaluate(p)
    if c.kind == "cellwise":
        vals = [_vec(_probe_value(o, env, shapes)) for o in c.operands]
        return fused_cellwise(c.program, vals, ctx)
    if c.kind == "rowagg":
        mv = c.mv
        transpose = isinstance(mv.mat, Transpose)
        mat_node = mv.mat.child if transpose else mv.mat
        X = _probe_value(mat_node, env, shapes)
        y = _vec(_probe_value(mv.vec, env, shapes))
        extras = [_vec(_probe_value(o, env, shapes))
                  for o in c.operands[1:]]
        return fused_rowagg(X, y, c.program, extras, ctx,
                            transpose=transpose)
    raise ValueError(f"unknown candidate kind {c.kind!r}")


def _run_unfused(c: Candidate, env: dict, shapes: dict[int, tuple],
                 ctx: GpuContext, index: DagIndex) \
        -> tuple[list[KernelResult], float]:
    """Execute the region's member operators one kernel at a time.

    Children outside the region get probe values; members evaluate in
    topological order so interior results feed their consumers.  Returns
    the per-member results plus the bytes of interior intermediates that
    the fused form would never materialize.
    """
    order = {id(nd): i for i, nd in enumerate(index.nodes)}
    members = sorted((m for m in c.members
                      if not isinstance(m, Transpose)),
                     key=lambda m: order[id(m)])
    mids = {id(m) for m in c.members}
    vals: dict[int, np.ndarray] = {}
    results: list[KernelResult] = []
    intermediate = 0.0

    def operand(child: Node):
        if id(child) in vals:
            return vals[id(child)]
        return _probe_value(child, env, shapes)

    for m in members:
        if isinstance(m, MatVec):
            if isinstance(m.mat, Transpose):
                res = _matvec(operand(m.mat.child), _vec(operand(m.vec)),
                              True, ctx)
            else:
                res = _matvec(operand(m.mat), _vec(operand(m.vec)),
                              False, ctx)
        elif isinstance(m, EwMul):
            res = blas1.ewmul(_vec(operand(m.a)), _vec(operand(m.b)), ctx)
        elif isinstance(m, Add):
            res = blas1.axpy(1.0, _vec(operand(m.a)), _vec(operand(m.b)),
                             ctx)
        elif isinstance(m, Smul):
            res = blas1.scal(m.alpha, _vec(operand(m.x)), ctx)
        else:
            raise TypeError(f"cannot cost member {type(m).__name__}")
        vals[id(m)] = res.output
        results.append(res)
        if m is not c.root and id(m) in mids:
            intermediate += res.output.size * _D
    return results, intermediate


def cost_candidate(c: Candidate, env: dict, shapes: dict[int, tuple],
                   index: DagIndex, ctx: GpuContext = DEFAULT_CONTEXT,
                   engine=None) -> PlannedCandidate:
    """Cost both execution forms of one candidate."""
    fused_res = _run_fused(c, env, shapes, ctx, engine)
    fused = CostEstimate()
    fused.absorb(fused_res)
    unfused_results, intermediate = _run_unfused(c, env, shapes, ctx, index)
    unfused = CostEstimate(intermediate_bytes=intermediate)
    uc = PerfCounters()
    for res in unfused_results:
        unfused.absorb(res)
        uc.add(res.counters)
    return PlannedCandidate(candidate=c, fused=fused, unfused=unfused,
                            fused_counters=fused_res.counters.copy(),
                            unfused_counters=uc)
