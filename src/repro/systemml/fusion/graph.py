"""DAG indexing and shape inference for the fusion-plan optimizer.

The expression DAG (:mod:`repro.systemml.dag`) stores children only; plan
enumeration additionally needs consumer (parent) edges — a node consumed by
two operators cannot be an *interior* of a fused region, because its value
must be materialized for the outside consumer — and per-node result shapes,
so only vector-shaped regions are considered cell-wise fusable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...sparse.csr import CsrMatrix
from ..dag import (Add, EwMul, FusedPattern, Input, MatVec, Node, Smul,
                   Transpose)


@dataclass
class DagIndex:
    """Unique nodes (children before parents) plus consumer edges."""

    root: Node
    nodes: list[Node]                      # topological, children first
    parents: dict[int, list[Node]]         # id(node) -> consumer nodes

    def parent_ids(self, node: Node) -> list[int]:
        return [id(p) for p in self.parents.get(id(node), [])]

    def is_shared(self, node: Node) -> bool:
        """More than one consumer edge (diamond sharing)."""
        return len(self.parents.get(id(node), [])) > 1


def index_dag(root: Node) -> DagIndex:
    """Build the consumer-edge index; each unique node appears once."""
    nodes: list[Node] = []
    seen: set[int] = set()
    parents: dict[int, list[Node]] = {id(root): []}

    def visit(nd: Node) -> None:
        if id(nd) in seen:
            return
        seen.add(id(nd))
        for child in nd.inputs:
            parents.setdefault(id(child), []).append(nd)
            visit(child)
        nodes.append(nd)

    visit(root)
    # a parent edge may have been recorded before its child was visited;
    # re-walk to add edges from revisited (shared) parents exactly once each
    parents = {id(root): []}
    for nd in nodes:
        parents.setdefault(id(nd), [])
        for child in nd.inputs:
            parents.setdefault(id(child), []).append(nd)
    return DagIndex(root, nodes, parents)


MAT = "mat"
VEC = "vec"


def infer_shapes(index: DagIndex, env: dict) -> dict[int, tuple]:
    """id(node) -> ``('mat', m, n)`` or ``('vec', k)``.

    Nodes whose shape cannot be derived (unbound inputs, malformed
    combinations) are simply absent — enumeration skips regions touching
    them rather than guessing.
    """
    shapes: dict[int, tuple] = {}
    for nd in index.nodes:                 # children first
        shape = _node_shape(nd, shapes, env)
        if shape is not None:
            shapes[id(nd)] = shape
    return shapes


def _value_shape(value) -> tuple | None:
    if isinstance(value, CsrMatrix):
        return (MAT, value.shape[0], value.shape[1])
    arr = np.asarray(value)
    if arr.ndim == 2:
        return (MAT, arr.shape[0], arr.shape[1])
    if arr.ndim == 1:
        return (VEC, arr.shape[0])
    return None


def _node_shape(nd: Node, shapes: dict[int, tuple], env: dict) \
        -> tuple | None:
    if isinstance(nd, Input):
        if nd.name not in env:
            return None
        return _value_shape(env[nd.name])
    if isinstance(nd, Transpose):
        s = shapes.get(id(nd.child))
        if s is not None and s[0] == MAT:
            return (MAT, s[2], s[1])
        return None
    if isinstance(nd, MatVec):
        sm = shapes.get(id(nd.mat))
        sv = shapes.get(id(nd.vec))
        if (sm is not None and sv is not None and sm[0] == MAT
                and sv[0] == VEC and sv[1] == sm[2]):
            return (VEC, sm[1])
        return None
    if isinstance(nd, (EwMul, Add)):
        sa = shapes.get(id(nd.a))
        sb = shapes.get(id(nd.b))
        if sa is not None and sa == sb and sa[0] == VEC:
            return sa
        return None
    if isinstance(nd, Smul):
        s = shapes.get(id(nd.x))
        return s if s is not None and s[0] == VEC else None
    if isinstance(nd, FusedPattern):
        sx = shapes.get(id(nd.X))
        if sx is not None and sx[0] == MAT:
            return (VEC, sx[2])
        return None
    return None
