"""A mini-DML script interpreter: run Listing 1 as written in the paper.

SystemML executes R-like DML scripts; this module interprets the statement
subset those scripts use — enough to run the paper's Listing 1 text
verbatim:

* assignments with matrix expressions (parsed by
  :mod:`repro.systemml.parser`, rewritten so every Eq.-1 occurrence executes
  through the fused kernel);
* scalar expressions with arithmetic, ``^``, comparisons, ``&``;
* builtins: ``t()``, ``sum()``, ``read()``, ``write()``, ``matrix(v, rows=,
  cols=)``, ``nrow()``, ``ncol()``;
* ``while (cond) { ... }`` loops;
* ``#`` comments and multi-statement lines separated by ``;``.

Matrix statements are charged to an :class:`~repro.ml.runtime.MLRuntime`
ledger, so a script run produces the same per-category timing a hand-coded
algorithm would — the DML text of Listing 1 and :func:`repro.ml.linreg_cg`
are verified to agree both numerically and in pattern usage.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..ml.runtime import MLRuntime
from ..sparse.csr import CsrMatrix
from .parser import DmlSyntaxError


class DmlRuntimeError(RuntimeError):
    """Raised when a script statement cannot be executed."""


# --------------------------------------------------------------------------- #
# tokenizer (a superset of the expression tokenizer: comparison ops, braces)
_SCRIPT_TOKEN_RE = re.compile(
    r"\s*(?:(?P<matmul>%\*%)"
    r"|(?P<cmp><=|>=|==|!=|<|>)"
    r"|(?P<and>&&?)"
    r"|(?P<number>\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9.]*)"
    r"|(?P<dollar>\$\w+)"
    r"|(?P<string>\"[^\"]*\")"
    r"|(?P<op>[()+\-*/^,={}]))"
)


def _strip_comments(line: str) -> str:
    out = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        if ch == "#" and not in_str:
            break
        out.append(ch)
    return "".join(out)


def split_statements(src: str) -> list[str]:
    """Split a script into statements, keeping ``while (...) {`` markers."""
    statements: list[str] = []
    for raw in src.splitlines():
        line = _strip_comments(raw).strip()
        if not line:
            continue
        for part in re.split(r";", line):
            part = part.strip()
            if part:
                statements.append(part)
    return statements


# --------------------------------------------------------------------------- #
@dataclass
class _Tok:
    kind: str
    text: str


def _tokenize(src: str) -> list[_Tok]:
    toks: list[_Tok] = []
    pos = 0
    while pos < len(src):
        m = _SCRIPT_TOKEN_RE.match(src, pos)
        if m is None or m.end() == pos:
            rest = src[pos:].strip()
            if not rest:
                break
            raise DmlSyntaxError(f"bad token at {src[pos:pos + 10]!r}")
        kind = m.lastgroup
        assert kind is not None
        toks.append(_Tok(kind, m.group(kind)))
        pos = m.end()
    return toks


class _ExprEval:
    """Evaluates one expression against the interpreter's environment.

    Scalars evaluate eagerly; matrix/vector subexpressions build DAG nodes
    that are rewritten (pattern fusion) and executed through the runtime.
    """

    def __init__(self, interp: "DmlInterpreter", tokens: list[_Tok]):
        self.interp = interp
        self.toks = tokens
        self.i = 0

    def _peek(self) -> _Tok | None:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def _next(self) -> _Tok:
        tok = self._peek()
        if tok is None:
            raise DmlSyntaxError("unexpected end of expression")
        self.i += 1
        return tok

    def _expect(self, text: str) -> None:
        tok = self._next()
        if tok.text != text:
            raise DmlSyntaxError(f"expected {text!r}, got {tok.text!r}")

    # ---- grammar: bool > cmp > add > mul > matmul > power > atom ----------
    def parse(self):
        v = self.bool_expr()
        if self._peek() is not None:
            raise DmlSyntaxError(f"trailing {self._peek().text!r}")
        return v

    def bool_expr(self):
        v = self.cmp_expr()
        while (t := self._peek()) is not None and t.kind == "and":
            self._next()
            rhs = self.cmp_expr()
            v = bool(v) and bool(rhs)
        return v

    def cmp_expr(self):
        v = self.add_expr()
        while (t := self._peek()) is not None and t.kind == "cmp":
            op = self._next().text
            rhs = self.add_expr()
            if not (np.isscalar(v) and np.isscalar(rhs)):
                raise DmlRuntimeError("comparisons need scalar operands")
            v = {"<": v < rhs, ">": v > rhs, "<=": v <= rhs,
                 ">=": v >= rhs, "==": v == rhs, "!=": v != rhs}[op]
        return v

    def add_expr(self):
        v = self.mul_expr()
        while (t := self._peek()) is not None and t.text in "+-":
            op = self._next().text
            rhs = self.mul_expr()
            v = self._arith(v, rhs, op)
        return v

    def mul_expr(self):
        v = self.matmul_expr()
        while (t := self._peek()) is not None and t.text in "*/":
            op = self._next().text
            rhs = self.matmul_expr()
            v = self._arith(v, rhs, op)
        return v

    def matmul_expr(self):
        v = self.power_expr()
        while (t := self._peek()) is not None and t.kind == "matmul":
            self._next()
            rhs = self.power_expr()
            v = self._matmul(v, rhs)
        return v

    def power_expr(self):
        v = self.atom()
        if (t := self._peek()) is not None and t.text == "^":
            self._next()
            rhs = self.atom()
            if not (np.isscalar(v) and np.isscalar(rhs)):
                raise DmlRuntimeError("^ needs scalar operands")
            return float(v) ** float(rhs)
        return v

    def atom(self):
        tok = self._next()
        if tok.kind == "number":
            return float(tok.text)
        if tok.kind == "string":
            return tok.text.strip('"')
        if tok.kind == "dollar":
            return tok.text                 # script argument like $1
        if tok.text == "-":
            v = self.atom()
            return -v if np.isscalar(v) else -np.asarray(v)
        if tok.text == "(":
            v = self.bool_expr()
            self._expect(")")
            return v
        if tok.kind == "ident":
            nxt = self._peek()
            if nxt is not None and nxt.text == "(":
                return self._call(tok.text)
            return self.interp.lookup(tok.text)
        raise DmlSyntaxError(f"unexpected {tok.text!r}")

    # ---- builtins -----------------------------------------------------------
    def _call(self, name: str):
        self._expect("(")
        args: list[Any] = []
        kwargs: dict[str, Any] = {}
        if self._peek() is not None and self._peek().text != ")":
            while True:
                tok = self._peek()
                nxt = self.toks[self.i + 1] if self.i + 1 < len(self.toks) \
                    else None
                if tok is not None and tok.kind == "ident" \
                        and nxt is not None and nxt.text == "=":
                    key = self._next().text
                    self._expect("=")
                    kwargs[key] = self.bool_expr()
                else:
                    args.append(self.bool_expr())
                if self._peek() is not None and self._peek().text == ",":
                    self._next()
                    continue
                break
        self._expect(")")
        return self.interp.call_builtin(name, args, kwargs)

    # ---- value combination ----------------------------------------------------
    def _arith(self, a, b, op: str):
        if np.isscalar(a) and np.isscalar(b):
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            return a / b
        if op == "/" and np.isscalar(b):
            return self._arith(a, 1.0 / b, "*")
        if op in "+-":
            bb = -np.asarray(b) if op == "-" else np.asarray(b)
            return self.interp.vec_add(np.asarray(a), bb)
        if op == "*":
            if np.isscalar(a):
                return self.interp.vec_scal(float(a), np.asarray(b))
            if np.isscalar(b):
                return self.interp.vec_scal(float(b), np.asarray(a))
            return self.interp.vec_mul(np.asarray(a), np.asarray(b))
        raise DmlRuntimeError(f"unsupported operator {op!r}")

    def _matmul(self, a, b):
        return self.interp.matmul(a, b)


# --------------------------------------------------------------------------- #
@dataclass
class ScriptResult:
    """Environment and ledger after a script run."""

    env: dict[str, Any]
    runtime: MLRuntime
    outputs: dict[str, Any] = field(default_factory=dict)
    statements_executed: int = 0
    fused_calls: int = 0


class _Transposed:
    """Marker wrapper: ``t(X)`` awaiting a %*% right-hand side."""

    __slots__ = ("matrix",)

    def __init__(self, matrix):
        self.matrix = matrix


class DmlInterpreter:
    """Executes mini-DML scripts against an :class:`MLRuntime`."""

    def __init__(self, runtime: MLRuntime | None = None,
                 inputs: dict[str, Any] | None = None):
        self.rt = runtime or MLRuntime()
        self.env: dict[str, Any] = {}
        self.inputs = dict(inputs or {})
        self.outputs: dict[str, Any] = {}
        self.statements = 0
        self.fused_calls = 0

    # ---- environment ---------------------------------------------------------
    def lookup(self, name: str):
        try:
            return self.env[name]
        except KeyError:
            raise DmlRuntimeError(f"undefined variable {name!r}") from None

    # ---- vector/matrix ops charged to the runtime -----------------------------
    def vec_add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.rt.axpy(1.0, a, b)

    def vec_scal(self, alpha: float, a: np.ndarray) -> np.ndarray:
        return self.rt.scal(alpha, a)

    def vec_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.rt.ewmul(a, b)

    def matmul(self, a, b):
        """``a %*% b`` with fused-pattern detection for ``t(X) %*% (...)``.

        The interpreter evaluates inner-most expressions first, so by the
        time ``t(X) %*% q`` executes, ``q`` is already a vector.  Fusion of
        the *whole* pattern is still achieved because ``X %*% y`` results are
        tagged (see ``_MvResult``) with their provenance: if ``q`` was
        produced as ``X %*% y`` (possibly element-scaled by ``v``), the
        pattern executes as one fused kernel instead of two launches.
        """
        if isinstance(a, _Transposed):
            X = a.matrix
            if isinstance(X, np.ndarray) and X.ndim == 1:
                # t(p) %*% q on column vectors is an inner product
                return self.rt.dot(X, np.asarray(b, dtype=np.float64))
            prov = getattr(b, "_dml_provenance", None)
            if prov is not None and prov.get("X") is X:
                self.fused_calls += 1
                return self.rt.pattern(X, prov["y"], v=prov.get("v"))
            return self.rt.xt_mv(X, np.asarray(b, dtype=np.float64))
        if isinstance(a, (CsrMatrix, np.ndarray)) and not np.isscalar(b):
            out = self.rt.mv(a, np.asarray(b, dtype=np.float64))
            return _MvResult(out, {"X": a, "y": np.asarray(b)})
        raise DmlRuntimeError("unsupported %*% operands")

    # ---- builtins --------------------------------------------------------------
    def call_builtin(self, name: str, args: list, kwargs: dict):
        if name == "t":
            (x,) = args
            return _Transposed(x)
        if name == "sum":
            (x,) = args
            x = np.asarray(x, dtype=np.float64)
            return float(self.rt.dot(x, np.ones_like(x)))
        if name == "read":
            (key,) = args
            key = str(key).lstrip("$")
            try:
                return self.inputs[key] if key in self.inputs \
                    else self.inputs[f"${key}"]
            except KeyError:
                # positional $1/$2 style
                raise DmlRuntimeError(
                    f"no input bound for read({key!r})") from None
        if name == "write":
            x, dest = args
            self.outputs[str(dest)] = np.asarray(x)
            return x
        if name == "matrix":
            (value,) = args
            rows = int(kwargs.get("rows", 1))
            cols = int(kwargs.get("cols", 1))
            if cols == 1:
                return np.full(rows, float(value))
            return np.full((rows, cols), float(value))
        if name == "nrow":
            (x,) = args
            return float(x.shape[0])
        if name == "ncol":
            (x,) = args
            return float(x.shape[1])
        raise DmlRuntimeError(f"unknown builtin {name!r}")

    # ---- statement execution ------------------------------------------------
    def eval_expression(self, src: str):
        return _ExprEval(self, _tokenize(src)).parse()

    def run(self, script: str) -> ScriptResult:
        statements = split_statements(script)
        self._run_block(statements, 0, len(statements))
        return ScriptResult(env=self.env, runtime=self.rt,
                            outputs=self.outputs,
                            statements_executed=self.statements,
                            fused_calls=self.fused_calls)

    def _run_block(self, stmts: list[str], start: int, end: int) -> None:
        i = start
        while i < end:
            stmt = stmts[i]
            m = re.match(r"while\s*\((?P<cond>.*)\)\s*\{?\s*$", stmt)
            if m is None:
                m2 = re.match(r"while\s*\((?P<cond>.*)\)\s*\{", stmt)
                m = m2
            if m is not None:
                body_start, body_end = self._find_block(stmts, i)
                cond = m.group("cond")
                guard = 0
                while bool(self.eval_expression(cond)):
                    self._run_block(stmts, body_start, body_end)
                    guard += 1
                    if guard > 100_000:
                        raise DmlRuntimeError("while loop exceeded 100k "
                                              "iterations")
                i = body_end + 1          # skip past the closing brace
                continue
            if stmt == "}":
                i += 1
                continue
            self._execute(stmt)
            i += 1

    def _find_block(self, stmts: list[str], header: int) -> tuple[int, int]:
        """Return (first body stmt, index of the closing '}')."""
        depth = 0
        start = header + 1
        if stmts[header].rstrip().endswith("{"):
            depth = 1
        else:
            if start < len(stmts) and stmts[start] == "{":
                depth = 1
                start += 1
            else:
                raise DmlSyntaxError("while loop body must be braced")
        i = start
        while i < len(stmts):
            opens = stmts[i].count("{")
            closes = stmts[i].count("}")
            if re.match(r"while\s*\(", stmts[i]) and not opens:
                opens = 1                 # header with brace on next line
            depth += opens - closes
            if depth == 0:
                return start, i
            i += 1
        raise DmlSyntaxError("unterminated while block")

    def _execute(self, stmt: str) -> None:
        self.statements += 1
        m = re.match(r"(?P<name>[A-Za-z_][A-Za-z_0-9.]*)\s*=\s*(?P<rhs>.+)$",
                     stmt)
        if m is None:
            # bare expression statement (e.g. write(...))
            self.eval_expression(stmt)
            return
        value = self.eval_expression(m.group("rhs"))
        if isinstance(value, _Transposed):
            raise DmlRuntimeError("cannot assign a bare t(X)")
        self.env[m.group("name")] = value


class _MvResult(np.ndarray):
    """An ``X %*% y`` result carrying provenance for pattern fusion."""

    def __new__(cls, data: np.ndarray, provenance: dict):
        obj = np.asarray(data, dtype=np.float64).view(cls)
        obj._dml_provenance = provenance
        return obj

    def __array_finalize__(self, obj):
        if obj is None:
            return
        # provenance does not survive arithmetic: only the raw mv result
        # is a fusable inner term
        self._dml_provenance = None


def run_script(script: str, inputs: dict[str, Any],
               runtime: MLRuntime | None = None) -> ScriptResult:
    """Convenience wrapper: interpret ``script`` with the given inputs."""
    return DmlInterpreter(runtime, inputs).run(script)


#: the paper's Listing 1, as mini-DML (read($1/$2) bound via the inputs map)
LISTING1 = """
V = read($1); y = read($2);
eps = 0.001; tolerance = 0.000001;
r = -(t(V) %*% y);
p = -r;
nr2 = sum(r * r);
nr2_init = nr2; nr2_target = nr2 * tolerance ^ 2;
w = matrix(0, rows=ncol(V), cols=1);
max_iteration = 100; i = 0;
while(i < max_iteration & nr2 > nr2_target) {
  q = ((t(V) %*% (V %*% p)) + eps * p);
  alpha = nr2 / (t(p) %*% q);
  w = w + alpha * p;
  old_nr2 = nr2;
  r = r + alpha * q;
  nr2 = sum(r * r);
  beta = nr2 / old_nr2;
  p = -r + beta * p;
  i = i + 1;
}
write(w, "w");
"""
