"""Pattern-recognizing rewriter: DAG subtrees -> fused-kernel nodes.

Recognizes every Table-1 instantiation inside an expression DAG and replaces
it with a :class:`~repro.systemml.dag.FusedPattern` node:

* ``t(X) %*% y``                                   (XT_Y)
* ``t(X) %*% (X %*% y)``                           (XT_X_Y)
* ``t(X) %*% (v * (X %*% y))``                     (XT_V_X_Y)
* any of the above wrapped in ``alpha * (.)`` and/or ``+ beta * z``

The match requires both occurrences of the matrix to be the *same* Input
node — fusing two different matrices would be wrong, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dag import Add, EwMul, FusedPattern, Input, MatVec, Node, Smul, \
    Transpose


@dataclass
class _Match:
    X: Input
    y: Node
    v: Node | None
    inner: bool


def _same_matrix(a: Node, b: Node) -> bool:
    """Two mentions of the same matrix: identical node, or Inputs sharing a
    name (the parser creates one node per mention)."""
    if a is b:
        return True
    return (isinstance(a, Input) and isinstance(b, Input)
            and a.name == b.name)


def _references_matrix(node: Node, X: Input) -> bool:
    return any(_same_matrix(nd, X) for nd in node.walk())


def _match_core(node: Node) -> _Match | None:
    """Match ``t(X) %*% <inner>`` where inner is y, X%*%y, or v*(X%*%y)."""
    if not isinstance(node, MatVec) or not isinstance(node.mat, Transpose):
        return None
    xt = node.mat.child
    if not isinstance(xt, Input):
        return None
    inner = node.vec
    # t(X) %*% (v * (X %*% y)) -- v on either side of the element-wise mul
    if isinstance(inner, EwMul):
        for v_node, mv in ((inner.a, inner.b), (inner.b, inner.a)):
            if (isinstance(mv, MatVec) and isinstance(mv.mat, Input)
                    and _same_matrix(mv.mat, xt)):
                return _Match(xt, mv.vec, v_node, inner=True)
        return None
    # t(X) %*% (X %*% y)
    if (isinstance(inner, MatVec) and isinstance(inner.mat, Input)
            and _same_matrix(inner.mat, xt)):
        return _Match(xt, inner.vec, None, inner=True)
    # t(X) %*% y
    return _Match(xt, inner, None, inner=False)


def _strip_smul(node: Node) -> tuple[float, Node]:
    alpha = 1.0
    while isinstance(node, Smul):
        alpha *= node.alpha
        node = node.x
    return alpha, node


def _smul_members(top: Node, core: Node) -> list[Node]:
    """The Smul wrappers between ``top`` and (excluding) ``core``."""
    out = []
    while top is not core:
        out.append(top)
        top = top.x                        # _strip_smul guarantees Smul
    return out


def _consumer_counts(root: Node) -> dict[int, int]:
    """Consumer-edge count per unique node across the whole DAG."""
    counts: dict[int, int] = {}
    seen: set[int] = set()

    def visit(nd: Node) -> None:
        if id(nd) in seen:
            return
        seen.add(id(nd))
        for child in nd.inputs:
            counts[id(child)] = counts.get(id(child), 0) + 1
            visit(child)

    visit(root)
    return counts


def _interior_free(members: list[Node], counts: dict[int, int]) -> bool:
    """True when no interior (erased) node has an outside consumer.

    Fusing erases each member; a member consumed more than once is also
    needed elsewhere in the DAG, so its value must stay materialized and
    the fusion is illegal (it would silently drop the sharing).
    """
    return all(counts.get(id(m), 0) <= 1 for m in members)


def rewrite(node: Node) -> Node:
    """Return an equivalent DAG with Eq.-1 subtrees fused (bottom-up).

    Shared interior nodes (diamonds) block fusion of the region that
    would erase them: consumer edges are counted over the whole DAG
    passed in, so sharing visible from ``node`` is always respected.
    """
    return _rewrite(node, _consumer_counts(node))


def _rewrite(node: Node, counts: dict[int, int]) -> Node:
    # First, try the whole node as `core + beta*z` / `alpha*core` shapes.
    fused = _try_fuse(node, counts)
    if fused is not None:
        return fused
    # Otherwise rewrite children in place (dataclasses are mutable).
    if isinstance(node, Transpose):
        node.child = _rewrite(node.child, counts)
        node.__post_init__()
    elif isinstance(node, MatVec):
        node.mat = _rewrite(node.mat, counts)
        node.vec = _rewrite(node.vec, counts)
        node.__post_init__()
    elif isinstance(node, (EwMul, Add)):
        node.a = _rewrite(node.a, counts)
        node.b = _rewrite(node.b, counts)
        node.__post_init__()
    elif isinstance(node, Smul):
        node.x = _rewrite(node.x, counts)
        node.__post_init__()
    return node


def _core_members(m: _Match, core: Node) -> list[Node]:
    """The nodes a core match erases: outer MatVec, Transpose, inner."""
    members: list[Node] = [core, core.mat]
    inner = core.vec
    if m.inner:
        members.append(inner)
        if isinstance(inner, EwMul):       # the inner MatVec too
            mv = inner.b if inner.a is m.v else inner.a
            members.append(mv)
    return members


def _try_fuse(node: Node, counts: dict[int, int]) -> FusedPattern | None:
    """Attempt to match the full Eq. 1 at this root."""
    # Shape 1: Add(lhs, rhs) where one side is the (scaled) core and the
    # other is the (scaled) z term.
    if isinstance(node, Add):
        for core_side, z_side in ((node.a, node.b), (node.b, node.a)):
            alpha, core = _strip_smul(core_side)
            m = _match_core(core)
            if m is None:
                continue
            beta, z_node = _strip_smul(z_side)
            if beta == 0.0:
                continue
            # z must not reference the pattern matrix
            if _references_matrix(z_node, m.X):
                continue
            members = (_smul_members(core_side, core)
                       + _smul_members(z_side, z_node)
                       + _core_members(m, core))
            if not _interior_free(members, counts):
                continue
            return FusedPattern(m.X, _rewrite(m.y, counts),
                                v=(None if m.v is None
                                   else _rewrite(m.v, counts)),
                                z=_rewrite(z_node, counts), alpha=alpha,
                                beta=beta, inner=m.inner)
        return None
    # Shape 2: (alpha *) core with no z term.
    alpha, core = _strip_smul(node)
    m = _match_core(core)
    if m is None:
        return None
    members = _smul_members(node, core) + _core_members(m, core)
    if not _interior_free(members, counts):
        return None
    return FusedPattern(m.X, _rewrite(m.y, counts),
                        v=None if m.v is None else _rewrite(m.v, counts),
                        alpha=alpha, inner=m.inner)


def fused_nodes(root: Node) -> list[FusedPattern]:
    """All fused-pattern nodes in a DAG (for assertions and reporting)."""
    return [nd for nd in root.walk() if isinstance(nd, FusedPattern)]
