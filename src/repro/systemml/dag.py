"""A SystemML-like expression DAG for DML-style linear algebra scripts.

SystemML compiles R-like scripts (Listing 1) into operator DAGs before
deciding execution strategy.  This module provides the small IR needed to
express the paper's workloads::

    q = add(smul(1.0, matvec(t(X), ewmul(v, matvec(X, p)))), smul(eps, p))

The rewriter (:mod:`repro.systemml.rewriter`) pattern-matches these trees
onto Eq. 1 and replaces them with a single :class:`FusedPattern` node — the
paper's "transparently selects our fused GPU kernel" integration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..sparse.csr import CsrMatrix
from ..sparse.ops import spmv, spmv_t


class Node:
    """Base class for DAG nodes; children listed in ``inputs``."""

    inputs: tuple["Node", ...] = ()

    def eval(self, env: dict[str, Any]) -> Any:  # pragma: no cover
        raise NotImplementedError

    def walk(self):
        """Yield every node in the subtree (pre-order)."""
        yield self
        for child in self.inputs:
            yield from child.walk()


@dataclass(eq=False)
class Input(Node):
    """A named leaf bound at execution time (matrix or vector)."""

    name: str

    def eval(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(f"unbound input {self.name!r}") from None

    def __repr__(self) -> str:
        return f"Input({self.name})"


@dataclass(eq=False)
class Transpose(Node):
    """``t(X)`` — only meaningful as a MatVec operand here."""

    child: Node

    def __post_init__(self) -> None:
        self.inputs = (self.child,)

    def eval(self, env):
        x = self.child.eval(env)
        if isinstance(x, CsrMatrix):
            return x.transpose_csr()
        return np.asarray(x).T

    def __repr__(self) -> str:
        return f"t({self.child!r})"


@dataclass(eq=False)
class MatVec(Node):
    """``M %*% v`` for a (possibly transposed) matrix node."""

    mat: Node
    vec: Node

    def __post_init__(self) -> None:
        self.inputs = (self.mat, self.vec)

    def eval(self, env):
        v = np.asarray(self.vec.eval(env), dtype=np.float64)
        if isinstance(self.mat, Transpose):
            X = self.mat.child.eval(env)
            if isinstance(X, CsrMatrix):
                return spmv_t(X, v)
            return np.asarray(X, dtype=np.float64).T @ v
        X = self.mat.eval(env)
        if isinstance(X, CsrMatrix):
            return spmv(X, v)
        return np.asarray(X, dtype=np.float64) @ v

    def __repr__(self) -> str:
        return f"({self.mat!r} %*% {self.vec!r})"


@dataclass(eq=False)
class EwMul(Node):
    """Element-wise vector product ``a * b``."""

    a: Node
    b: Node

    def __post_init__(self) -> None:
        self.inputs = (self.a, self.b)

    def eval(self, env):
        return (np.asarray(self.a.eval(env), dtype=np.float64)
                * np.asarray(self.b.eval(env), dtype=np.float64))

    def __repr__(self) -> str:
        return f"({self.a!r} * {self.b!r})"


@dataclass(eq=False)
class Add(Node):
    """Vector addition ``a + b``."""

    a: Node
    b: Node

    def __post_init__(self) -> None:
        self.inputs = (self.a, self.b)

    def eval(self, env):
        return (np.asarray(self.a.eval(env), dtype=np.float64)
                + np.asarray(self.b.eval(env), dtype=np.float64))

    def __repr__(self) -> str:
        return f"({self.a!r} + {self.b!r})"


@dataclass(eq=False)
class Smul(Node):
    """Scalar multiple ``alpha * x``."""

    alpha: float
    x: Node

    def __post_init__(self) -> None:
        self.inputs = (self.x,)

    def eval(self, env):
        return self.alpha * np.asarray(self.x.eval(env), dtype=np.float64)

    def __repr__(self) -> str:
        return f"({self.alpha} * {self.x!r})"


@dataclass(eq=False)
class FusedPattern(Node):
    """A rewritten Eq.-1 subtree: executed by the fused kernel."""

    X: Node                     # Input node of the matrix
    y: Node
    v: Node | None = None
    z: Node | None = None
    alpha: float = 1.0
    beta: float = 0.0
    inner: bool = True

    def __post_init__(self) -> None:
        kids = [self.X, self.y]
        if self.v is not None:
            kids.append(self.v)
        if self.z is not None:
            kids.append(self.z)
        self.inputs = tuple(kids)

    def eval(self, env):
        from ..core.pattern import GenericPattern
        p = GenericPattern(
            self.X.eval(env), np.asarray(self.y.eval(env), dtype=np.float64),
            v=None if self.v is None else np.asarray(self.v.eval(env),
                                                     dtype=np.float64),
            z=None if self.z is None else np.asarray(self.z.eval(env),
                                                     dtype=np.float64),
            alpha=self.alpha, beta=self.beta, inner=self.inner)
        return p.reference()

    def __repr__(self) -> str:
        return (f"FusedPattern(alpha={self.alpha}, beta={self.beta}, "
                f"v={self.v is not None}, inner={self.inner})")


def count_nodes(root: Node, kind: type | None = None) -> int:
    """Count nodes (optionally of a given type) in a DAG."""
    return sum(1 for nd in root.walk()
               if kind is None or isinstance(nd, kind))
