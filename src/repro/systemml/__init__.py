"""SystemML-like end-to-end layer: DAG, rewriter, memory manager, scheduler."""

from .dag import (Add, EwMul, FusedPattern, Input, MatVec, Node, Smul,
                  Transpose, count_nodes)
from .memmanager import BlockState, GpuMemoryManager, MemStats, \
    OutOfDeviceMemory
from .parser import DmlSyntaxError, parse_assignment, parse_expression
from .profiler import BreakdownRow, profile_linreg_breakdown
from .rewriter import fused_nodes, rewrite
from .runner import SystemMLReport, SystemMLSession, table6_comparison
from .scheduler import HybridScheduler, PlacementDecision
from .script import (LISTING1, DmlInterpreter, DmlRuntimeError, ScriptResult,
                     run_script, split_statements)

__all__ = [
    "Add", "EwMul", "FusedPattern", "Input", "MatVec", "Node", "Smul",
    "Transpose", "count_nodes",
    "BlockState", "GpuMemoryManager", "MemStats", "OutOfDeviceMemory",
    "DmlSyntaxError", "parse_assignment", "parse_expression",
    "BreakdownRow", "profile_linreg_breakdown",
    "fused_nodes", "rewrite",
    "SystemMLReport", "SystemMLSession", "table6_comparison",
    "HybridScheduler", "PlacementDecision",
    "LISTING1", "DmlInterpreter", "DmlRuntimeError", "ScriptResult",
    "run_script", "split_statements",
]
