"""CPU-time breakdown instrumentation — reproduces Table 2.

The paper measured, on single-threaded SystemML, the share of LR-CG compute
time spent in operations belonging to the generic pattern (82.9% for KDD2010,
99.4% for HIGGS) versus BLAS-1 (16.9% / 0.1%).  We obtain the same breakdown
by running Listing 1 on the single-threaded CPU runtime, whose ledger tags
every operation with its category.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml.linreg import linreg_cg
from ..ml.runtime import MLRuntime


@dataclass
class BreakdownRow:
    """One Table-2 row: compute-time percentages for a dataset."""

    dataset: str
    pattern_pct: float
    blas1_pct: float

    @property
    def total_pct(self) -> float:
        return self.pattern_pct + self.blas1_pct


def profile_linreg_breakdown(X, y, dataset: str = "dataset",
                             eps: float = 1e-3,
                             max_iterations: int = 100) -> BreakdownRow:
    """Run LR-CG single-threaded on CPU and report Table 2's percentages.

    ``mv`` time (the plain ``X %*% w`` appears only through the pattern in
    Listing 1) is folded into the pattern share, matching the paper's
    definition "operations that are part of one or more of these patterns".
    """
    rt = MLRuntime("cpu", cpu_threads=1)
    linreg_cg(X, np.asarray(y, dtype=np.float64), rt, eps=eps,
              max_iterations=max_iterations, include_transfer=False)
    pattern = (rt.ledger.by_category.get("pattern", 0.0)
               + rt.ledger.by_category.get("mv", 0.0))
    blas1 = rt.ledger.by_category.get("blas1", 0.0)
    total = pattern + blas1
    if total == 0:
        raise RuntimeError("profiling produced no timed operations")
    return BreakdownRow(dataset=dataset,
                        pattern_pct=100.0 * pattern / total,
                        blas1_pct=100.0 * blas1 / total)
