"""A DML expression parser: R-like linear-algebra text -> operator DAG.

SystemML compiles DML scripts (Listing 1 of the paper is one) into operator
DAGs; this parser covers the expression fragment those statements use::

    q = t(V) %*% (V %*% p) + 0.001 * p          # parses to the DAG the
                                                 # rewriter fuses into Eq. 1

Grammar (standard R precedence for the relevant operators)::

    expr   := term   (("+" | "-") term)*
    term   := factor ("*" factor)*
    factor := atom   ("%*%" atom)*
    atom   := NUMBER | IDENT | "t" "(" expr ")" | "(" expr ")" | "-" atom

Numeric literals combine with expressions as scalar multiples (``Smul``);
``a - b`` desugars to ``a + (-1) * b``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .dag import Add, EwMul, Input, MatVec, Node, Smul, Transpose


class DmlSyntaxError(ValueError):
    """Raised on malformed expressions, with position information."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<matmul>%\*%)"
    r"|(?P<number>\d+\.?\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9.]*)"
    r"|(?P<op>[()+\-*]))"
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def tokenize(src: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(src):
        m = _TOKEN_RE.match(src, pos)
        if m is None or m.end() == pos:
            rest = src[pos:].lstrip()
            if not rest:
                break
            raise DmlSyntaxError(
                f"unexpected character {rest[0]!r} at position {pos}")
        kind = m.lastgroup
        assert kind is not None
        tokens.append(_Token(kind, m.group(kind), m.start(kind)))
        pos = m.end()
    return tokens


@dataclass
class _Scalar:
    """A numeric literal awaiting combination with a matrix/vector node."""

    value: float


class _Parser:
    def __init__(self, tokens: list[_Token], src: str):
        self.tokens = tokens
        self.src = src
        self.i = 0

    # ----- token helpers ---------------------------------------------------
    def _peek(self) -> _Token | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise DmlSyntaxError(f"unexpected end of input in {self.src!r}")
        self.i += 1
        return tok

    def _expect(self, text: str) -> None:
        tok = self._next()
        if tok.text != text:
            raise DmlSyntaxError(
                f"expected {text!r} at position {tok.pos}, got {tok.text!r}")

    # ----- grammar ----------------------------------------------------------
    def parse(self):
        node = self.expr()
        tok = self._peek()
        if tok is not None:
            raise DmlSyntaxError(
                f"trailing input {tok.text!r} at position {tok.pos}")
        return node

    def expr(self):
        node = self.term()
        while (tok := self._peek()) is not None and tok.text in "+-":
            self._next()
            rhs = self.term()
            if tok.text == "-":
                rhs = self._combine_mul(_Scalar(-1.0), rhs)
            node = self._combine_add(node, rhs)
        return node

    def term(self):
        node = self.factor()
        while (tok := self._peek()) is not None and tok.text == "*":
            self._next()
            node = self._combine_mul(node, self.factor())
        return node

    def factor(self):
        node = self.atom()
        while (tok := self._peek()) is not None and tok.kind == "matmul":
            self._next()
            rhs = self.atom()
            if isinstance(node, _Scalar) or isinstance(rhs, _Scalar):
                raise DmlSyntaxError("%*% requires matrix/vector operands")
            node = MatVec(node, rhs)
        return node

    def atom(self):
        tok = self._next()
        if tok.kind == "number":
            return _Scalar(float(tok.text))
        if tok.text == "-":
            return self._combine_mul(_Scalar(-1.0), self.atom())
        if tok.text == "(":
            node = self.expr()
            self._expect(")")
            return node
        if tok.kind == "ident":
            nxt = self._peek()
            if tok.text == "t" and nxt is not None and nxt.text == "(":
                self._next()
                inner = self.expr()
                self._expect(")")
                if isinstance(inner, _Scalar):
                    raise DmlSyntaxError("t() requires a matrix operand")
                return Transpose(inner)
            return Input(tok.text)
        raise DmlSyntaxError(
            f"unexpected token {tok.text!r} at position {tok.pos}")

    # ----- node combination --------------------------------------------------
    @staticmethod
    def _combine_mul(a, b):
        if isinstance(a, _Scalar) and isinstance(b, _Scalar):
            return _Scalar(a.value * b.value)
        if isinstance(a, _Scalar):
            return Smul(a.value, b)
        if isinstance(b, _Scalar):
            return Smul(b.value, a)
        return EwMul(a, b)

    @staticmethod
    def _combine_add(a, b):
        if isinstance(a, _Scalar) or isinstance(b, _Scalar):
            raise DmlSyntaxError("cannot add a scalar literal to a matrix "
                                 "expression (DML broadcasts are not "
                                 "modelled)")
        return Add(a, b)


def parse_expression(src: str) -> Node:
    """Parse one DML expression into a DAG.

    >>> node = parse_expression("t(V) %*% (V %*% p) + 0.001 * p")
    >>> from repro.systemml.rewriter import rewrite, fused_nodes
    >>> len(fused_nodes(rewrite(node)))
    1
    """
    node = _Parser(tokenize(src), src).parse()
    if isinstance(node, _Scalar):
        raise DmlSyntaxError("expression reduces to a bare scalar literal")
    return node


def to_dml(node: Node) -> str:
    """Pretty-print a DAG back to DML text (inverse of the parser).

    Fully parenthesized, so ``parse_expression(to_dml(n))`` always evaluates
    identically to ``n`` — the round-trip property the fuzz tests check.
    Fused nodes cannot be printed (they are a rewrite artifact, not DML).
    """
    from .dag import FusedPattern
    if isinstance(node, Input):
        return node.name
    if isinstance(node, Transpose):
        return f"t({to_dml(node.child)})"
    if isinstance(node, MatVec):
        return f"({to_dml(node.mat)} %*% {to_dml(node.vec)})"
    if isinstance(node, EwMul):
        return f"({to_dml(node.a)} * {to_dml(node.b)})"
    if isinstance(node, Add):
        return f"({to_dml(node.a)} + {to_dml(node.b)})"
    if isinstance(node, Smul):
        return f"({node.alpha!r} * {to_dml(node.x)})"
    if isinstance(node, FusedPattern):
        raise ValueError("FusedPattern nodes are a rewrite artifact with no "
                         "DML surface syntax; print the pre-rewrite DAG")
    raise TypeError(f"cannot print {type(node).__name__}")


def parse_assignment(src: str) -> tuple[str, Node]:
    """Parse ``name = expression`` (one DML statement)."""
    if "=" not in src:
        raise DmlSyntaxError("expected an assignment 'name = expression'")
    name, _, rhs = src.partition("=")
    name = name.strip()
    if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9.]*", name):
        raise DmlSyntaxError(f"invalid assignment target {name!r}")
    return name, parse_expression(rhs)
