"""End-to-end SystemML-like execution of Linear Regression CG (Table 6).

Models how the paper's preliminary SystemML integration behaves:

* the input matrix is converted (sparse-row -> CSR), copied out of the JVM
  heap through JNI, and uploaded once — then pinned on the device;
* the generic-pattern statement of each CG iteration executes on the GPU
  (fused kernel, or operator-level baselines for comparison);
* the surrounding BLAS-1 statements stay in the Java CP runtime on the host,
  so the pattern's input vector crosses JNI + PCIe *every iteration*, and the
  result crosses back — precisely the "inefficiencies in our current memory
  manager and data transformations" that shrink Table 5's 9x to Table 6's
  1.9x.

The pure-CPU comparison point runs everything in the host runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.engine import PatternEngine
from ..core.executor import PatternExecutor
from ..core.pattern import GenericPattern
from ..gpu.cpu import CpuCostModel
from ..kernels.base import DEFAULT_CONTEXT, GpuContext
from ..ml.linreg import linreg_cg
from ..ml.runtime import MLRuntime
from ..sparse.csr import CsrMatrix
from .memmanager import GpuMemoryManager

_D = 8


@dataclass
class SystemMLReport:
    """Timing report of one SystemML-mode run."""

    mode: str
    iterations: int
    kernel_ms: float             # pattern kernels only
    blas1_ms: float
    transfer_ms: float           # PCIe + JNI + conversion
    w: np.ndarray = field(repr=False, default=None)
    cache_hit_rate: float = 0.0  # engine plan-cache hit rate (GPU modes)

    @property
    def total_ms(self) -> float:
        return self.kernel_ms + self.blas1_ms + self.transfer_ms


class SystemMLSession:
    """Runs DML-level algorithms under a CPU or GPU execution mode."""

    def __init__(self, mode: str = "gpu-fused",
                 ctx: GpuContext | None = None,
                 cpu_threads: int = 8, via_jni: bool = True,
                 fuse: str = "pattern"):
        if mode not in ("cpu", "gpu-fused", "gpu-baseline", "hybrid"):
            raise ValueError(
                "mode must be cpu, gpu-fused, gpu-baseline, or hybrid")
        from ..ml.runtime import FUSE_MODES
        if fuse not in FUSE_MODES:
            raise ValueError(f"fuse must be one of {FUSE_MODES}")
        self.mode = mode
        self.fuse = fuse
        self.ctx = ctx or DEFAULT_CONTEXT
        self.cpu_threads = cpu_threads
        self.memmgr = GpuMemoryManager(self.ctx.device, via_jni=via_jni)
        self.executor = PatternExecutor(self.ctx)
        # pattern statements go through a session cache: plan selection,
        # tuning, and derived artifacts amortize across CG iterations
        self.engine = PatternEngine(self.ctx)
        self.cpu = CpuCostModel(threads=cpu_threads)
        self.scheduler: "HybridScheduler | None" = None
        if mode == "hybrid":
            from .scheduler import HybridScheduler
            # iterative algorithms reuse the staged matrix ~100x (Table 5)
            self.scheduler = HybridScheduler(self.memmgr, self.cpu,
                                             reuse_horizon=100.0)

    # ------------------------------------------------------------------ #
    def _hybrid_pattern(self, X, gp: GenericPattern,
                        op_name: str) -> tuple[np.ndarray, float, float]:
        """Place one pattern statement via the cost-based scheduler.

        Returns (result, kernel_ms, transfer_ms).  The first executions run
        on the CPU while the matrix upload would dominate; once the
        scheduler commits to the GPU, the matrix is staged and stays, and
        subsequent statements run on the device.
        """
        assert self.scheduler is not None
        from ..core.plans import BidmatCpuPlan, FusedPlan
        gpu_est = FusedPlan(self.ctx).evaluate(gp)
        cpu_est = BidmatCpuPlan(self.cpu).evaluate(gp)
        decision = self.scheduler.decide(op_name, ["X"], gpu_est.time_ms,
                                         cpu_est.time_ms)
        if decision.target == "gpu":
            # BLAS-1 stays host-side, so the statement's vector operand and
            # result cross JNI+PCIe like in the pure-GPU session
            n = gp.shape[1]
            vec_ms = (self.memmgr.transfer.h2d_ms(gp.y.size * _D,
                                                  via_jni=True)
                      + self.memmgr.transfer.d2h_ms(n * _D, via_jni=True))
            return (gpu_est.output, gpu_est.time_ms,
                    decision.transfer_ms + vec_ms)
        return cpu_est.output, cpu_est.time_ms, 0.0

    def _statement_runner(self, X, y64: np.ndarray, n: int, eps: float):
        """DAG-level execution of Listing 1's two pattern statements.

        ``fuse="auto"`` asks the engine's plan cache for a cost-optimized
        :class:`~repro.systemml.fusion.FusionPlan` per statement (planned
        once per matrix fingerprint, replayed every CG iteration);
        ``fuse="off"`` executes the parsed DAG one operator-kernel at a
        time.  Returns ``run(stmt_name, env) -> (output, kernel_ms)``.
        """
        from .fusion import evaluate_dag
        from .parser import parse_expression

        stmts = {
            "r": "-1.0 * (t(X) %*% y)",
            "q": f"t(X) %*% (X %*% p) + {eps!r} * p",
        }
        roots = {name: parse_expression(dml) for name, dml in stmts.items()}
        if self.fuse == "auto":
            # plan both statements up front (p is not computed yet, but
            # plans depend only on vector lengths — zeros probe suffices)
            plan_env = {"X": X, "y": y64, "p": np.zeros(n)}
            roots = {
                name: self.engine.fusion_plan(
                    root, plan_env, expression=stmts[name]).lowered()
                for name, root in roots.items()}

        def run(name: str, env: dict) -> tuple[np.ndarray, float]:
            results: list = []
            out = evaluate_dag(roots[name], env, self.ctx,
                               engine=self.engine, results=results)
            return out, sum(res.time_ms for res in results)

        return run

    def run_linreg_cg(self, X, y, eps: float = 1e-3,
                      max_iterations: int = 100,
                      tolerance: float = 1e-6) -> SystemMLReport:
        """Listing 1 under SystemML-style placement and data movement."""
        if self.mode == "hybrid":
            return self._run_linreg_hybrid(X, y, eps, max_iterations,
                                           tolerance)
        if self.mode == "cpu":
            rt = MLRuntime("cpu", cpu_threads=self.cpu_threads)
            res = linreg_cg(X, y, rt, eps=eps,
                            max_iterations=max_iterations,
                            tolerance=tolerance, include_transfer=False)
            return SystemMLReport(
                mode="cpu", iterations=res.iterations,
                kernel_ms=rt.ledger.by_category.get("pattern", 0.0)
                + rt.ledger.by_category.get("mv", 0.0),
                blas1_ms=rt.ledger.by_category.get("blas1", 0.0),
                transfer_ms=0.0, w=res.w)

        m, n = X.shape
        mat_bytes = X.nbytes() if isinstance(X, CsrMatrix) else m * n * _D
        self.memmgr.register("X", mat_bytes,
                             needs_conversion=isinstance(X, CsrMatrix),
                             pinned=True)
        transfer_ms = self.memmgr.request("X")        # one-time, amortized

        strategy = "fused" if self.mode == "gpu-fused" else "cusparse"
        kernel_ms = 0.0
        blas1_ms = 0.0

        # host-side CG state (BLAS-1 stays in the Java CP runtime)
        cpu_rt = MLRuntime("cpu", cpu_threads=self.cpu_threads)
        y64 = np.asarray(y, dtype=np.float64)

        # fuse="auto"/"off": the pattern statements run as expression DAGs
        # (cost-optimized or unfused); fuse="pattern" keeps the hand-matched
        # engine route.  All three are bit-identical on sparse matrices.
        run_stmt = None
        if self.fuse != "pattern":
            run_stmt = self._statement_runner(X, y64, n, eps)

        # r = -(t(X) %*% y): the y vector crosses JNI+PCIe, result returns
        transfer_ms += self.memmgr.transfer.h2d_ms(m * _D, via_jni=True)
        if run_stmt is not None:
            r, k_ms = run_stmt("r", {"X": X, "y": y64})
            kernel_ms += k_ms
        else:
            gp = GenericPattern(X, y64, alpha=-1.0, inner=False)
            r0 = self.engine.evaluate_pattern(gp, strategy)
            kernel_ms += r0.time_ms
            r = r0.output
        transfer_ms += self.memmgr.transfer.d2h_ms(n * _D, via_jni=True)

        p = cpu_rt.scal(-1.0, r)
        nr2 = cpu_rt.sumsq(r)
        nr2_target = nr2 * tolerance ** 2
        w = np.zeros(n, dtype=np.float64)
        i = 0
        while i < max_iterations and nr2 > nr2_target:
            # ship p to the device, run the fused statement, ship q back
            transfer_ms += self.memmgr.transfer.h2d_ms(n * _D, via_jni=True)
            if run_stmt is not None:
                q, k_ms = run_stmt("q", {"X": X, "p": p})
                kernel_ms += k_ms
            else:
                gp = GenericPattern(X, p, z=p, beta=eps)
                qres = self.engine.evaluate_pattern(gp, strategy)
                kernel_ms += qres.time_ms
                q = qres.output
            transfer_ms += self.memmgr.transfer.d2h_ms(n * _D, via_jni=True)

            alpha = nr2 / cpu_rt.dot(p, q)
            w = cpu_rt.axpy(alpha, p, w)
            old_nr2 = nr2
            r = cpu_rt.axpy(alpha, q, r)
            nr2 = cpu_rt.sumsq(r)
            p = cpu_rt.axpy(nr2 / old_nr2, p, -r)
            i += 1

        blas1_ms = cpu_rt.ledger.by_category.get("blas1", 0.0)
        return SystemMLReport(mode=self.mode, iterations=i,
                              kernel_ms=kernel_ms, blas1_ms=blas1_ms,
                              transfer_ms=transfer_ms, w=w,
                              cache_hit_rate=self.engine.stats().hit_rate)

    def _run_linreg_hybrid(self, X, y, eps: float, max_iterations: int,
                           tolerance: float) -> SystemMLReport:
        """Listing 1 with per-statement cost-based CPU/GPU placement.

        The matrix is *not* pinned up front: the scheduler sees the upload
        cost on the first pattern statement and may start on the CPU; once
        the amortized device execution wins, it stages X and subsequent
        statements run on the GPU — the behaviour the paper's future-work
        cost model calls for.
        """
        m, n = X.shape
        mat_bytes = X.nbytes() if isinstance(X, CsrMatrix) else m * n * _D
        self.memmgr.register("X", mat_bytes,
                             needs_conversion=isinstance(X, CsrMatrix))
        cpu_rt = MLRuntime("cpu", cpu_threads=self.cpu_threads)
        y64 = np.asarray(y, dtype=np.float64)

        kernel_ms = transfer_ms = 0.0
        gp = GenericPattern(X, y64, alpha=-1.0, inner=False)
        r, k_ms, t_ms = self._hybrid_pattern(X, gp, "t(X) %*% y")
        kernel_ms += k_ms
        transfer_ms += t_ms

        p = cpu_rt.scal(-1.0, r)
        nr2 = cpu_rt.sumsq(r)
        nr2_target = nr2 * tolerance ** 2
        w = np.zeros(n, dtype=np.float64)
        i = 0
        while i < max_iterations and nr2 > nr2_target:
            gp = GenericPattern(X, p, z=p, beta=eps)
            q, k_ms, t_ms = self._hybrid_pattern(X, gp, "pattern")
            kernel_ms += k_ms
            transfer_ms += t_ms
            alpha = nr2 / cpu_rt.dot(p, q)
            w = cpu_rt.axpy(alpha, p, w)
            old_nr2 = nr2
            r = cpu_rt.axpy(alpha, q, r)
            nr2 = cpu_rt.sumsq(r)
            p = cpu_rt.axpy(nr2 / old_nr2, p, -r)
            i += 1
        return SystemMLReport(
            mode="hybrid", iterations=i, kernel_ms=kernel_ms,
            blas1_ms=cpu_rt.ledger.by_category.get("blas1", 0.0),
            transfer_ms=transfer_ms, w=w)


def table6_comparison(X, y, eps: float = 1e-3, max_iterations: int = 100,
                      cpu_threads: int = 8,
                      ctx: GpuContext | None = None) -> dict[str, float]:
    """Run CPU vs GPU-SystemML and report Table 6's two speedup rows."""
    gpu = SystemMLSession("gpu-fused", ctx=ctx,
                          cpu_threads=cpu_threads).run_linreg_cg(
        X, y, eps=eps, max_iterations=max_iterations)
    cpu = SystemMLSession("cpu", ctx=ctx,
                          cpu_threads=cpu_threads).run_linreg_cg(
        X, y, eps=eps, max_iterations=max_iterations)
    if not np.allclose(gpu.w, cpu.w, rtol=1e-8, atol=1e-8):
        raise AssertionError("CPU and GPU SystemML runs diverged")
    return {
        "total_speedup": cpu.total_ms / gpu.total_ms,
        "fused_kernel_speedup": cpu.kernel_ms / gpu.kernel_ms,
        "iterations": float(gpu.iterations),
        "gpu_total_ms": gpu.total_ms,
        "cpu_total_ms": cpu.total_ms,
        "gpu_kernel_ms": gpu.kernel_ms,
        "gpu_transfer_ms": gpu.transfer_ms,
    }
