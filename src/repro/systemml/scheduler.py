"""Cost-based CPU/GPU operator placement (the paper's future-work cost model).

For every operator the scheduler compares the device-kernel estimate plus any
transfers the memory manager would have to perform against the host estimate,
and places the operator where the total is smaller.  This is the first of the
three SystemML integration components the paper describes (cost model,
memory manager, GPU kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.cpu import CpuCostModel
from .memmanager import GpuMemoryManager


@dataclass
class PlacementDecision:
    """Outcome of one scheduling query."""

    op: str
    target: str                  # "gpu" or "cpu"
    gpu_kernel_ms: float
    cpu_ms: float
    transfer_ms: float

    @property
    def gpu_total_ms(self) -> float:
        return self.gpu_kernel_ms + self.transfer_ms

    @property
    def chosen_ms(self) -> float:
        return self.gpu_total_ms if self.target == "gpu" else self.cpu_ms


@dataclass
class HybridScheduler:
    """Per-operator placement against a shared memory manager.

    ``reuse_horizon`` amortizes one-time staging costs over the expected
    number of future uses of the operand — the paper's central Table-5
    observation that iterative ML algorithms amortize the host-to-device
    transfer.  A horizon of 1 is the greedy scheduler (each statement pays
    the full upload), which systematically strands iterative workloads on
    the CPU.
    """

    memmgr: GpuMemoryManager
    cpu: CpuCostModel = field(default_factory=CpuCostModel)
    #: bias > 1 favours the CPU (models launch/JNI risk aversion)
    gpu_penalty: float = 1.0
    #: expected future uses of a staged operand (amortizes uploads)
    reuse_horizon: float = 1.0
    decisions: list[PlacementDecision] = field(default_factory=list)

    def estimate_transfer_ms(self, operand_keys: list[str]) -> float:
        """Upload cost for operands not currently resident and current."""
        total = 0.0
        for key in operand_keys:
            b = self.memmgr.blocks.get(key)
            if b is None:
                raise KeyError(f"operand {key!r} not registered")
            if not b.on_device or b.device_dirty:
                total += self.memmgr.transfer.h2d_ms(
                    b.nbytes, via_jni=self.memmgr.via_jni,
                    convert=b.needs_conversion and not b.on_device)
        return total

    def decide(self, op: str, operand_keys: list[str],
               gpu_kernel_ms: float, cpu_ms: float) -> PlacementDecision:
        """Pick a target; on GPU, actually stage the operands (charged)."""
        transfer_ms = self.estimate_transfer_ms(operand_keys)
        amortized = transfer_ms / max(1.0, self.reuse_horizon)
        gpu_total = (gpu_kernel_ms + amortized) * self.gpu_penalty
        target = "gpu" if gpu_total < cpu_ms else "cpu"
        d = PlacementDecision(op, target, gpu_kernel_ms, cpu_ms, transfer_ms)
        self.decisions.append(d)
        if target == "gpu":
            for key in operand_keys:
                self.memmgr.request(key)
        return d

    @property
    def gpu_fraction(self) -> float:
        if not self.decisions:
            return 0.0
        return sum(d.target == "gpu" for d in self.decisions) \
            / len(self.decisions)
