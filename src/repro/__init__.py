"""repro — reproduction of "On Optimizing Machine Learning Workloads via
Kernel Fusion" (Ashari et al., PPoPP 2015).

The package implements the paper's fused GPU kernels for the generic pattern

    ``w = alpha * X^T x (v ⊙ (X x y)) + beta * z``

against a simulated Kepler-class GPU (event-exact memory/atomic accounting +
an analytical cost model), along with the operator-level baselines
(cuSPARSE / cuBLAS / BIDMat-like), the §3.3 launch-parameter tuner, the five
ML algorithms of Table 1, and a SystemML-like end-to-end layer.

Quick start::

    import numpy as np
    from repro import evaluate
    from repro.sparse import random_csr

    X = random_csr(10_000, 1_000, sparsity=0.01, rng=0)
    y = np.random.default_rng(1).normal(size=1_000)
    fused = evaluate(X, y, strategy="fused")
    base = evaluate(X, y, strategy="cusparse")
    print(f"speedup: {base.time_ms / fused.time_ms:.1f}x")
"""

from .core import (GenericPattern, Instantiation, PatternEngine,
                   PatternExecutor, PatternRequest, TABLE1,
                   evaluate, mvtmv, pattern_of, xt_mv)
from .kernels.base import GpuContext, KernelResult
from .sparse import CsrMatrix, random_csr

__version__ = "1.0.0"

__all__ = [
    "GenericPattern", "Instantiation", "PatternEngine", "PatternExecutor",
    "PatternRequest", "TABLE1",
    "evaluate", "mvtmv", "pattern_of", "xt_mv",
    "GpuContext", "KernelResult",
    "CsrMatrix", "random_csr",
    "__version__",
]
