"""``repro.trace`` — low-overhead span tracing with per-phase attribution.

The engine, the kernels, and the serving layer are instrumented with
:func:`span` call sites.  With no tracer installed those sites cost one
global read and a shared no-op context manager — nothing is timed or
allocated, and outputs are bit-identical either way.  Installing a
:class:`Tracer` (usually via :func:`capture`) turns the same sites into a
nested, thread-aware span tree that exports to Chrome trace-event JSON
(``chrome://tracing`` / Perfetto) or a top-down phase summary with
end-to-end cost attribution.  See DESIGN.md §3.4 for the span taxonomy.

Typical use::

    from repro import trace

    with trace.capture() as tracer:
        engine.evaluate(X, y)
    print(trace.to_text(trace.aggregate(tracer.snapshot())))
    trace.write_chrome("chrome-trace.json", tracer.snapshot())
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from .export import to_chrome, validate_chrome, write_chrome
from .report import (PhaseStat, aggregate, attribution, attribution_text,
                     to_text)
from .span import NOOP_SPAN, Span, Tracer

__all__ = [
    "NOOP_SPAN", "PhaseStat", "Span", "Tracer", "active", "aggregate",
    "attribution", "attribution_text", "capture", "current_id", "install",
    "span", "to_chrome", "to_text", "uninstall", "validate_chrome",
    "write_chrome",
]

#: The installed tracer, or None.  Hot paths read this once per span site —
#: the single branch that makes disabled tracing free.
_active: Tracer | None = None
_install_lock = threading.Lock()


def install(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _active
    with _install_lock:
        _active = tracer if tracer is not None else Tracer()
        return _active


def uninstall() -> None:
    """Remove the installed tracer; span sites go back to no-ops."""
    global _active
    with _install_lock:
        _active = None


def active() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _active


@contextmanager
def capture(tracer: Tracer | None = None):
    """Install a tracer for the duration of a block, then restore::

        with trace.capture() as tracer:
            ...traced work...
    """
    global _active
    with _install_lock:
        previous = _active
        _active = tracer if tracer is not None else Tracer()
        current = _active
    try:
        yield current
    finally:
        with _install_lock:
            _active = previous


def span(name: str, category: str = "", parent: int | None = None, **args):
    """Open a span on the installed tracer, or a shared no-op when none is.

    This is the only call hot paths make; keep arguments cheap (plain
    scalars) because they are evaluated before the enabled check.
    """
    t = _active
    if t is None:
        return NOOP_SPAN
    return t.span(name, category, parent=parent, **args)


def current_id() -> int | None:
    """Current span id for cross-thread parent propagation (None if off)."""
    t = _active
    return t.current_id() if t is not None else None
