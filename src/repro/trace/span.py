"""Structured spans with thread-local context propagation.

A :class:`Span` is one timed region of the pipeline — an engine evaluation,
a kernel phase, a stretch of queue wait — with a name, a category (the
coarse phase taxonomy DESIGN.md §3.4 tabulates), nested parentage, and two
attachment channels: ``args`` (facts known at open/close time: strategy,
cache hit/miss, batch size) and ``counters`` (accumulated quantities: nnz
processed, bytes built).

A :class:`Tracer` collects finished spans.  Context propagation is
thread-local: within one thread, ``tracer.span(...)`` nests under the
innermost open span automatically; across threads (the serve worker pool,
``evaluate_many``'s executor) the caller captures ``tracer.current_id()``
and passes it as ``parent=`` so the tree survives the hop.

**Zero-cost when disabled.**  The hot paths call the module-level
:func:`repro.trace.span` helper, which reads one module global; when no
tracer is installed it returns a shared no-op context manager whose
``__enter__``/``__exit__``/``set``/``count`` do nothing.  No timestamps are
taken, no objects allocated — the disabled path is a dict-free branch, and
``tests/test_trace_overhead.py`` holds it under 5% of a warm
``evaluate_many`` loop.  Numerical outputs never depend on tracing either
way (``tests/test_trace_parity.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class Span:
    """One finished, timed region (times are ``time.monotonic()`` seconds)."""

    id: int
    parent_id: int | None
    name: str
    category: str
    t0: float
    t1: float
    tid: int
    thread_name: str
    args: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return (self.t1 - self.t0) * 1e3


class _NoopSpan:
    """Shared do-nothing span handle for the disabled-tracer path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def count(self, **counters) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """An open span: context manager that records itself on exit."""

    __slots__ = ("_tracer", "id", "parent_id", "name", "category", "t0",
                 "args", "counters")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 parent_id: int | None, args: dict):
        self._tracer = tracer
        self.id = tracer._next_id()
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.args = args
        self.counters: dict = {}
        self.t0 = 0.0

    def set(self, key: str, value) -> None:
        """Attach a fact learned while the span was open (cache hit, ...)."""
        self.args[key] = value

    def count(self, **counters) -> None:
        """Accumulate numeric counters (nnz=..., bytes=...)."""
        for k, v in counters.items():
            self.counters[k] = self.counters.get(k, 0) + v

    def __enter__(self) -> "_ActiveSpan":
        tr = self._tracer
        if self.parent_id is None:
            self.parent_id = tr.current_id()
        tr._push(self.id)
        self.t0 = tr.clock()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = self._tracer.clock()
        self._tracer._pop()
        self._tracer._record(Span(
            id=self.id, parent_id=self.parent_id, name=self.name,
            category=self.category, t0=self.t0, t1=t1,
            tid=threading.get_ident(),
            thread_name=threading.current_thread().name,
            args=self.args, counters=self.counters))
        return False


class Tracer:
    """Thread-safe collector of finished spans plus running phase totals.

    ``max_spans`` bounds retention (a long-lived server must not grow
    without bound): beyond it, new spans still feed the aggregate phase
    totals but the event list stops growing and ``dropped`` counts them.
    """

    clock = staticmethod(time.monotonic)

    def __init__(self, max_spans: int = 250_000):
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._lock = threading.Lock()
        self._id = 0
        self._tls = threading.local()
        self._totals: dict[tuple[str, str], list] = {}

    # ------------------------------------------------------------ span opening
    def span(self, name: str, category: str = "", parent: int | None = None,
             **args) -> _ActiveSpan:
        """Open a span as a context manager; nests under the thread's
        innermost open span unless ``parent`` is given explicitly."""
        return _ActiveSpan(self, name, category, parent, args)

    def add_span(self, name: str, category: str, t0: float, t1: float,
                 parent: int | None = None, tid: int | None = None,
                 args: dict | None = None,
                 counters: dict | None = None) -> Span:
        """Record a synthetic span from explicit timestamps.

        The serve layer uses this for regions whose endpoints were measured
        by other code (queue wait: enqueue time -> dispatch time) rather
        than bracketed by a context manager.  Timestamps must come from the
        tracer clock (``time.monotonic()``).
        """
        sp = Span(id=self._next_id(), parent_id=parent, name=name,
                  category=category, t0=t0, t1=max(t0, t1),
                  tid=tid if tid is not None else threading.get_ident(),
                  thread_name=threading.current_thread().name,
                  args=args or {}, counters=counters or {})
        self._record(sp)
        return sp

    # ------------------------------------------------------- context tracking
    def current_id(self) -> int | None:
        """Innermost open span id in this thread (``None`` at top level).

        Capture this before handing work to another thread and pass it as
        ``parent=`` there; thread-local nesting cannot cross the hop.
        """
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span_id: int) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span_id)

    def _pop(self) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack:
            stack.pop()

    # -------------------------------------------------------------- recording
    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _record(self, span: Span) -> None:
        with self._lock:
            key = (span.category, span.name)
            tot = self._totals.get(key)
            if tot is None:
                tot = self._totals[key] = [0, 0.0]
            tot[0] += 1
            tot[1] += span.duration_ms
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped += 1

    # -------------------------------------------------------------- reporting
    def phase_totals(self) -> dict[str, dict]:
        """Running per-phase aggregates (survive ``max_spans`` drops).

        Keys are ``category.name``; values carry ``count`` and
        ``total_ms``.  This is what the serve metrics endpoint folds in.
        """
        with self._lock:
            return {
                (f"{cat}.{name}" if cat else name):
                    {"count": c, "total_ms": ms}
                for (cat, name), (c, ms) in sorted(self._totals.items())
            }

    def snapshot(self) -> list[Span]:
        """Point-in-time copy of the retained span list."""
        with self._lock:
            return list(self.spans)

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self._totals.clear()
            self.dropped = 0
