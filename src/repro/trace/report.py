"""Top-down phase summary and end-to-end cost attribution over a span tree.

:func:`aggregate` folds a span list into per-phase rows with *total* time
(span open -> close) and *self* time (total minus direct children), so
nested phases — kernel execution inside an engine evaluation inside a serve
batch — sum sensibly instead of double-counting.  :func:`to_text` renders
the classic profiler table, hottest phase first.

:func:`attribution` is the acceptance check behind ``repro trace``: given
the spans of a traced run and the measured end-to-end latency, it sums the
per-request phases (queue wait, evaluation — itself decomposed into
profile/transpose builds and kernel execution — and completion wait) and
reports what fraction of the measured time the trace explains.  A healthy
trace attributes within 10%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .span import Span


@dataclass
class PhaseStat:
    """Aggregated totals for one ``category.name`` phase."""

    name: str
    category: str
    count: int = 0
    total_ms: float = 0.0
    self_ms: float = 0.0
    counters: dict = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.category}.{self.name}" if self.category else self.name

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


def aggregate(spans: list[Span]) -> list[PhaseStat]:
    """Per-phase totals with self time, ordered by total time descending."""
    child_ms: dict[int, float] = {}
    for s in spans:
        if s.parent_id is not None:
            child_ms[s.parent_id] = child_ms.get(s.parent_id, 0.0) \
                + s.duration_ms
    stats: dict[tuple[str, str], PhaseStat] = {}
    for s in spans:
        st = stats.get((s.category, s.name))
        if st is None:
            st = stats[(s.category, s.name)] = PhaseStat(s.name, s.category)
        st.count += 1
        st.total_ms += s.duration_ms
        st.self_ms += max(0.0, s.duration_ms - child_ms.get(s.id, 0.0))
        for k, v in s.counters.items():
            st.counters[k] = st.counters.get(k, 0) + v
    return sorted(stats.values(), key=lambda st: -st.total_ms)


def to_text(stats: list[PhaseStat]) -> str:
    """Render the top-down phase table (hottest total first)."""
    total_self = sum(st.self_ms for st in stats) or 1.0
    lines = [f"{'phase':<28} {'count':>7} {'total ms':>10} {'self ms':>10} "
             f"{'self %':>7} {'mean ms':>9}"]
    for st in stats:
        lines.append(
            f"{st.key:<28} {st.count:>7d} {st.total_ms:>10.3f} "
            f"{st.self_ms:>10.3f} {100 * st.self_ms / total_self:>6.1f}% "
            f"{st.mean_ms:>9.4f}")
        if st.counters:
            extras = ", ".join(f"{k}={v:g}" for k, v in
                               sorted(st.counters.items()))
            lines.append(f"{'':<28}   {extras}")
    return "\n".join(lines)


def _total(stats: dict[str, PhaseStat], key: str) -> float:
    st = stats.get(key)
    return st.total_ms if st is not None else 0.0


def attribution(spans: list[Span], measured_ms: float) -> dict:
    """Explain ``measured_ms`` of end-to-end latency from the span tree.

    ``measured_ms`` is the sum of per-request end-to-end latencies the run
    measured *outside* the tracer (serve response latencies, or per-call
    walls for an engine loop).  Returns the per-phase decomposition plus
    ``coverage`` = attributed / measured; the ``repro trace`` gate requires
    ``|coverage - 1| <= 0.1``.
    """
    stats = {st.key: st for st in aggregate(spans)}
    queue_wait = sum(s.duration_ms for s in spans
                     if s.name == "queue-wait"
                     and s.args.get("status", "ok") == "ok")
    completion = _total(stats, "serve.completion")
    # one span per evaluated request: engine.request under serve/batched
    # paths, bare engine.evaluate for direct engine loops
    evaluate = _total(stats, "engine.request") or \
        _total(stats, "engine.evaluate")
    attributed = queue_wait + evaluate + completion
    profile_build = _total(stats, "engine.profile-build") \
        + _total(stats, "engine.transpose-build") \
        + _total(stats, "engine.kernel-compile")
    kernel = sum(st.total_ms for st in stats.values()
                 if st.category == "kernel")
    # compiled-vs-interpreted split: AOT-dispatched kernel spans carry a
    # compiled=True arg; everything else in the kernel category ran
    # interpreted
    kernel_compiled = sum(s.duration_ms for s in spans
                          if s.category == "kernel"
                          and s.args.get("compiled"))
    return {
        "measured_ms": measured_ms,
        "attributed_ms": attributed,
        "coverage": attributed / measured_ms if measured_ms else 0.0,
        "queue_wait_ms": queue_wait,
        "evaluate_ms": evaluate,
        "completion_ms": completion,
        "profile_build_ms": profile_build,
        "kernel_execute_ms": kernel,
        "kernel_compiled_ms": kernel_compiled,
        "kernel_interpreted_ms": max(0.0, kernel - kernel_compiled),
        "evaluate_other_ms": max(0.0, evaluate - profile_build - kernel),
    }


def attribution_text(att: dict) -> str:
    """Human-readable attribution block for the CLI."""
    cov = att["coverage"]
    lines = [
        "phase attribution (per-request end-to-end):",
        f"  queue-wait:       {att['queue_wait_ms']:10.3f} ms",
        f"  evaluate:         {att['evaluate_ms']:10.3f} ms",
        f"    profile-build:  {att['profile_build_ms']:10.3f} ms",
        f"    kernel-execute: {att['kernel_execute_ms']:10.3f} ms",
        f"      compiled:     {att.get('kernel_compiled_ms', 0.0):10.3f} ms",
        f"      interpreted:  "
        f"{att.get('kernel_interpreted_ms', 0.0):10.3f} ms",
        f"    other (plan/fingerprint/dispatch): "
        f"{att['evaluate_other_ms']:.3f} ms",
        f"  completion-wait:  {att['completion_ms']:10.3f} ms",
        f"  attributed:       {att['attributed_ms']:10.3f} ms of "
        f"{att['measured_ms']:.3f} ms measured ({100 * cov:.1f}%)",
    ]
    return "\n".join(lines)
