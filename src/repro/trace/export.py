"""Chrome trace-event export: spans -> ``chrome://tracing`` / Perfetto JSON.

Emits the JSON Object Format of the Trace Event specification: a
``traceEvents`` array of complete (``"ph": "X"``) events with microsecond
``ts``/``dur``, one process, real thread ids, plus ``thread_name`` metadata
events so the serve scheduler/worker/engine threads are labelled in the
viewer.  Span ``args`` and ``counters`` are merged into the event ``args``
so cache hits and nnz counts show up in the selection panel.

:func:`validate_chrome` is the schema check the tests (and the ``repro
trace`` CLI, after writing) run over the produced document.
"""

from __future__ import annotations

import json

from .span import Span

_PID = 1


def to_chrome(spans: list[Span], process_name: str = "repro") -> dict:
    """Build the Chrome trace-event JSON document for a span list."""
    base = min((s.t0 for s in spans), default=0.0)
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": process_name},
    }]
    seen_tids: dict[int, str] = {}
    for s in spans:
        if s.tid not in seen_tids:
            seen_tids[s.tid] = s.thread_name
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID,
                "tid": s.tid, "args": {"name": s.thread_name},
            })
        args = {**s.args, **s.counters}
        args["span_id"] = s.id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        events.append({
            "name": s.name,
            "cat": s.category or "repro",
            "ph": "X",
            "ts": (s.t0 - base) * 1e6,
            "dur": (s.t1 - s.t0) * 1e6,
            "pid": _PID,
            "tid": s.tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(path, spans: list[Span],
                 process_name: str = "repro") -> dict:
    """Write the Chrome trace JSON to ``path``; returns the document."""
    doc = to_chrome(spans, process_name=process_name)
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    return doc


def validate_chrome(doc: dict) -> int:
    """Check a document against the trace-event schema we emit.

    Raises ``ValueError`` on the first violation; returns the number of
    complete ("X") events otherwise.
    """
    if not isinstance(doc, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace must carry a 'traceEvents' array")
    complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i}: not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i}: missing {key!r}")
        if ev["ph"] == "M":
            continue
        if ev["ph"] != "X":
            raise ValueError(f"event {i}: unexpected phase {ev['ph']!r}")
        for key in ("ts", "dur", "cat"):
            if key not in ev:
                raise ValueError(f"event {i}: complete event missing {key!r}")
        if not (isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0):
            raise ValueError(f"event {i}: ts must be a number >= 0")
        if not (isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0):
            raise ValueError(f"event {i}: dur must be a number >= 0")
        complete += 1
    return complete
