"""Static checkers over extracted kernel models.

Three finding families, each anchored to an invariant the paper's fused
kernels rely on:

* ``shared-race`` / ``global-race`` — the aggregation hierarchy (registers →
  shared memory → global memory, Section 3.1) is only correct when every
  potentially-colliding update is atomic or barrier-separated.  Shared-memory
  conflicts are checked per barrier phase; global-memory conflicts ignore
  phases entirely because **no inter-block barrier exists** — the exact
  reason Algorithms 1-2 flush with ``ctx.atomic_add``.
* ``divergent-barrier`` — ``BARRIER`` (and warp shuffles) under a
  thread-divergent condition deadlock on real hardware;
  :class:`~repro.gpu.simt.SimtEngine` only discovers this at launch time,
  this checker flags it before any launch.
"""

from __future__ import annotations

from itertools import combinations

from .model import SHARED, WRITE, Access, Finding, KernelModel


def _pair_conflicts(a: Access, b: Access) -> bool:
    """Whether two may-concurrent accesses to one array can collide."""
    if a.kind != WRITE and b.kind != WRITE:
        return False                      # read-read is always fine
    if a.atomic and b.atomic:
        return False                      # atomics serialize against atomics
    if a.space == SHARED:
        return not (a.thread_disjoint and b.thread_disjoint)
    return not (a.grid_disjoint and b.grid_disjoint)


def _self_conflicts(a: Access) -> bool:
    """Whether one write site collides with its own other executions."""
    if a.kind != WRITE or a.atomic:
        return False
    if a.space == SHARED:
        return not a.thread_disjoint
    return not a.grid_disjoint


def _race_kind(space: str) -> str:
    return "shared-race" if space == SHARED else "global-race"


def _taint_text(t: frozenset[str]) -> str:
    return "{" + ",".join(sorted(t)) + "}" if t else "{uniform}"


def check_races(model: KernelModel) -> list[Finding]:
    """Conflicting non-atomic accesses not separated by a barrier."""
    findings: list[Finding] = []
    seen: set[tuple] = set()

    def emit(kind: str, line: int, message: str, key: tuple) -> None:
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(kind=kind, kernel=model.name, line=line,
                                message=message))

    by_array: dict[tuple[str, str], list[Access]] = {}
    for acc in model.accesses:
        by_array.setdefault((acc.space, acc.array), []).append(acc)

    for (space, array), accs in sorted(by_array.items()):
        for a in accs:
            if _self_conflicts(a):
                scope = ("threads of one block" if space == SHARED
                         else "threads of different blocks")
                emit(_race_kind(space), a.line,
                     f"non-atomic write to {space} array {array!r} with "
                     f"index taint {_taint_text(a.index_taint)} is not "
                     f"provably disjoint across {scope}; use "
                     + ("ctx.atomic_add_shared" if space == SHARED
                        else "ctx.atomic_add")
                     + " or restructure the partition",
                     ("self", space, array, a.line))
        for a, b in combinations(accs, 2):
            if space == SHARED and a.phase != b.phase:
                continue                  # a barrier orders shared phases
            if a.line == b.line and a.kind == b.kind and a.atomic == b.atomic:
                continue                  # duplicate site from loop re-walk
            if _pair_conflicts(a, b):
                between = ("in the same barrier phase" if space == SHARED
                           else "with no inter-block barrier available")
                emit(_race_kind(space), max(a.line, b.line),
                     f"{a.kind} (line {a.line}) and {b.kind} (line {b.line})"
                     f" of {space} array {array!r} may touch the same cell "
                     f"{between}; separate them with a barrier or make both "
                     "atomic",
                     ("pair", space, array, frozenset({a.line, b.line}),
                      frozenset({(a.kind, a.atomic), (b.kind, b.atomic)})))
    return findings


def check_barriers(model: KernelModel) -> list[Finding]:
    """Barriers or warp shuffles under thread-divergent control flow."""
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for sync in model.syncs:
        divergent = sync.divergent_guards()
        if not divergent:
            continue
        key = (sync.kind, sync.line)
        if key in seen:
            continue
        seen.add(key)
        conds = "; ".join(f"{g.text!r} (line {g.line}, taint "
                          f"{_taint_text(g.taint)})" for g in divergent)
        what = ("BARRIER" if sync.kind == "barrier"
                else "warp shuffle")
        findings.append(Finding(
            kind="divergent-barrier", kernel=model.name, line=sync.line,
            message=f"{what} under thread-divergent control flow: {conds}; "
                    "threads taking different sides deadlock at the sync "
                    "point (SimtEngine raises DeadlockError at launch)"))
    return findings


def check_model(model: KernelModel) -> list[Finding]:
    """All static checkers over one kernel model."""
    return check_barriers(model) + check_races(model)


def check_models(models: list[KernelModel]) -> list[Finding]:
    """Check every path model, deduplicating identical findings."""
    out: list[Finding] = []
    seen: set[tuple] = set()
    for model in models:
        for f in check_model(model):
            key = (f.kind, f.kernel, f.line, f.message)
            if key not in seen:
                seen.add(key)
                out.append(f)
    return out
