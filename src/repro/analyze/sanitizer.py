"""Dynamic cross-validation of static findings via the SimtEngine sanitizer.

Every static finding class maps onto a dynamic observation the interpreter
can make when run with ``SimtEngine(sanitize=True)``:

* ``shared-race`` / ``global-race`` — the shadow-memory sanitizer records
  the last writer (block, thread, barrier epoch) per cell and reports any
  unordered conflicting pair (:class:`repro.gpu.simt.SanitizerReport`);
* ``divergent-barrier`` — the launch itself raises
  :class:`~repro.gpu.simt.DeadlockError` when threads park inconsistently.

:func:`dynamic_kinds` runs one launch and folds both observations into the
static finding taxonomy, so a fixture kernel's static and dynamic verdicts
can be asserted equal (the acceptance criterion of the analyzer: no finding
class exists that only one side can see).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..gpu.simt import DeadlockError, SanitizerReport, SimtEngine
from ..sparse import random_csr


def sanitized_launch(kernel: Callable, grid_size: int, block_size: int,
                     args: tuple = (), shared_doubles: int = 0) \
        -> tuple[set[str], SanitizerReport | None]:
    """Run one sanitized launch; return (finding kinds, report).

    ``report`` is ``None`` when the launch deadlocked — shadow state from a
    partial launch would be misleading.
    """
    engine = SimtEngine(sanitize=True)
    try:
        engine.launch(kernel, grid_size, block_size, args,
                      shared_doubles=shared_doubles)
    except DeadlockError:
        return {"divergent-barrier"}, None
    return engine.report.kinds(), engine.report


def dynamic_kinds(kernel: Callable, grid_size: int, block_size: int,
                  args: tuple = (), shared_doubles: int = 0) -> set[str]:
    """The finding kinds one sanitized launch reproduces dynamically."""
    kinds, _ = sanitized_launch(kernel, grid_size, block_size, args,
                                shared_doubles=shared_doubles)
    return kinds


def fixture_inputs(m: int = 13, n: int = 8, seed: int = 0):
    """A small, column-reusing CSR workload that makes latent races land.

    Dense-ish sparsity guarantees different rows (handled by different
    vectors, possibly in different blocks) share columns, so a non-atomic
    shared/global aggregation actually collides instead of getting lucky.
    """
    X = random_csr(m, n, 0.6, rng=seed)
    rng = np.random.default_rng(seed + 1)
    return {
        "X": X, "m": m, "n": n,
        "p": rng.normal(size=m), "y": rng.normal(size=n),
        "v": rng.normal(size=m), "z": rng.normal(size=n),
        "w": np.zeros(n),
    }


def alg1_launch(kernel: Callable, *, grid_size: int = 2,
                block_size: int = 8, VS: int = 4, seed: int = 0) -> set[str]:
    """Sanitize a kernel with Algorithm 1's signature on fixture inputs."""
    fx = fixture_inputs(seed=seed)
    X, m, n = fx["X"], fx["m"], fx["n"]
    vectors = grid_size * (block_size // VS)
    C = max(1, -(-m // vectors))
    return dynamic_kinds(
        kernel, grid_size, block_size,
        (X.values, X.col_idx, X.row_off, fx["p"], fx["w"], m, n, VS, C),
        shared_doubles=n)


def alg2_launch(kernel: Callable, *, grid_size: int = 2,
                block_size: int = 8, VS: int = 4, seed: int = 0,
                alpha: float = 1.0, beta: float = 0.5) -> set[str]:
    """Sanitize a kernel with Algorithm 2's signature on fixture inputs."""
    fx = fixture_inputs(seed=seed)
    X, m, n = fx["X"], fx["m"], fx["n"]
    vectors = grid_size * (block_size // VS)
    C = max(1, -(-m // vectors))
    return dynamic_kinds(
        kernel, grid_size, block_size,
        (X.values, X.col_idx, X.row_off, fx["y"], fx["v"], fx["z"], fx["w"],
         m, n, VS, C, alpha, beta),
        shared_doubles=n)
