"""The ``repro check`` entry point: run every static checker and report.

Default scope (no paths given): all shipped SIMT kernels in
:mod:`repro.kernels.simt_kernels` plus a ``(VS, TL)`` grid of generated
dense specializations (the Listing 2 lint).  With explicit paths, only
those kernel files are analyzed — that is how the seeded-bug fixture corpus
under ``tests/badkernels/`` is exercised.
"""

from __future__ import annotations

import ast
import json
import os

from .checkers import check_models
from .codegen_lint import (check_cellwise_source, check_codegen_source,
                           check_sparse_source, check_specialization)
from .extract import AnalysisError, extract_kernel, is_kernel
from .model import Finding

DEFAULT_GRID = ((2, 2), (4, 2), (4, 4), (8, 2), (8, 4), (16, 2), (32, 2))


def parse_grid(spec: str) -> tuple[tuple[int, int], ...]:
    """Parse ``"4x2,8x4"`` into ``((4, 2), (8, 4))`` (VS x TL pairs)."""
    pairs = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            vs, tl = (int(v) for v in part.lower().split("x"))
        except ValueError:
            raise ValueError(
                f"grid entry {part!r} must be VSxTL (e.g. 8x4)") from None
        if vs < 1 or tl < 1:
            raise ValueError(f"grid entry {part!r} must be positive")
        pairs.append((vs, tl))
    if not pairs:
        raise ValueError("empty specialization grid")
    return tuple(pairs)


def analyze_file(path: str) -> list[Finding]:
    """Statically check every SIMT kernel defined in one Python file."""
    with open(path) as f:
        source = f.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(
            f"{path}:{exc.lineno}: {exc.msg}") from None
    findings: list[Finding] = []
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if is_kernel(node):
            for f_ in check_models(extract_kernel(node)):
                findings.append(Finding(
                    kind=f_.kind, kernel=f_.kernel, line=f_.line,
                    message=f_.message, file=path))
        elif node.name.startswith(("mtmvm_", "cellwise_", "sparse_")):
            # generated-kernel families are linted as standalone sources;
            # re-anchor their segment-relative line numbers to the file
            src = ast.get_source_segment(source, node) or ""
            checker = (check_codegen_source if node.name.startswith("mtmvm_")
                       else check_sparse_source
                       if node.name.startswith("sparse_")
                       else check_cellwise_source)
            offset = node.lineno - 1
            findings.extend(
                Finding(kind=f_.kind, kernel=f_.kernel,
                        line=f_.line + offset, message=f_.message, file=path)
                for f_ in checker(src))
    return findings


def shipped_kernels_path() -> str:
    from ..kernels import simt_kernels
    return simt_kernels.__file__


def check_shipped() -> list[Finding]:
    """Race/barrier analysis of every shipped per-thread kernel."""
    return analyze_file(shipped_kernels_path())


def check_grid(grid: tuple[tuple[int, int], ...] = DEFAULT_GRID) \
        -> list[Finding]:
    """Lint generated dense kernels across a (VS, TL) specialization grid."""
    findings: list[Finding] = []
    for vs, tl in grid:
        findings.extend(check_specialization(vs * tl, vs, tl))
    return findings


def check_fusion_sources() -> list[Finding]:
    """Lint every fused source the plan optimizer emits for the shipped
    DML scripts on a small synthetic matrix (fresh-kernel regression)."""
    from ..kernels.cellwise import cellwise_params
    from ..kernels.codegen import generate_cellwise_source
    from ..sparse.generate import random_csr
    from ..systemml.fusion import SHIPPED_DML, make_env, optimize

    X = random_csr(64, 16, 0.2, rng=0)
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for spec in SHIPPED_DML.values():
        root = spec.parse()
        plan = optimize(root, make_env(spec, X, rng=1),
                        expression=spec.dml)
        for cand in plan.chosen_candidates():
            if cand.program is None:       # eq1 lowers onto existing kernels
                continue
            # both shipped vector lengths, so each program is linted at the
            # specializations the runtime would actually compile
            for n in {X.shape[0], X.shape[1]}:
                vs, tl = cellwise_params(n)
                key = (cand.program.key(), vs * tl, vs, tl)
                if key in seen:
                    continue
                seen.add(key)
                findings.extend(check_cellwise_source(
                    generate_cellwise_source(vs * tl, vs, tl, cand.program),
                    filename=f"<fusion {spec.name}: {cand.label}>"))
    return findings


def check_sparse_codegen() -> list[Finding]:
    """Lint every source the AOT sparse generator emits over representative
    structures — dense-ish, empty-row-heavy, single-row, and fully empty —
    at a small VS x C specialization grid (fresh-kernel regression)."""
    from ..kernels.codegen import CompiledSparseKernels
    from ..sparse.generate import random_csr

    structures = [
        random_csr(64, 16, 0.3, rng=0),      # typical
        random_csr(48, 12, 0.02, rng=1),     # mostly empty rows
        random_csr(1, 8, 0.5, rng=2),        # single row
        random_csr(32, 8, 0.0, rng=3),       # nnz == 0 (degenerate source)
    ]
    findings: list[Finding] = []
    for X in structures:
        for vs, c in ((32, 1), (64, 4)):
            bundle = CompiledSparseKernels(X, vs=vs, c=c)
            for name, src in bundle.sources.items():
                findings.extend(check_sparse_source(
                    src, filename=f"<generated {name}>"))
    return findings


def run_check(paths: list[str] | None = None,
              grid: tuple[tuple[int, int], ...] = DEFAULT_GRID) \
        -> list[Finding]:
    """Full check run; ``paths`` overrides the default shipped-kernel scope."""
    if paths:
        findings: list[Finding] = []
        for path in paths:
            if not os.path.exists(path):
                raise SystemExit(f"kernel file not found: {path}")
            findings.extend(analyze_file(path))
        return findings
    return (check_shipped() + check_grid(grid) + check_fusion_sources()
            + check_sparse_codegen())


def findings_json(findings: list[Finding],
                  suppressed: list[Finding] | None = None) -> str:
    """Stable machine-readable findings: a flat list of dicts with sorted
    keys, ordered by (file, line, kind).  Suppressed findings (inline
    ``# analyze: allow`` sites) are included with ``"suppressed": true``
    so the gate's exceptions stay auditable."""
    rows = [dict(f.to_dict(), suppressed=False) for f in findings]
    rows += [dict(f.to_dict(), suppressed=True) for f in (suppressed or [])]
    rows.sort(key=lambda r: (r["file"], r["line"], r["kind"]))
    return json.dumps(rows, indent=2, sort_keys=True)


def findings_text(findings: list[Finding], checked: str,
                  suppressed_count: int = 0) -> str:
    lines = [f.describe() for f in findings]
    tail = f"{len(findings)} finding(s) over {checked}"
    if suppressed_count:
        tail += f" ({suppressed_count} suppressed)"
    lines.append(tail)
    return "\n".join(lines)
