"""The ``repro check`` entry point: run every static checker and report.

Default scope (no paths given): all shipped SIMT kernels in
:mod:`repro.kernels.simt_kernels` plus a ``(VS, TL)`` grid of generated
dense specializations (the Listing 2 lint).  With explicit paths, only
those kernel files are analyzed — that is how the seeded-bug fixture corpus
under ``tests/badkernels/`` is exercised.
"""

from __future__ import annotations

import ast
import json
import os

from .checkers import check_models
from .codegen_lint import check_specialization
from .extract import AnalysisError, extract_kernel, is_kernel
from .model import Finding

DEFAULT_GRID = ((2, 2), (4, 2), (4, 4), (8, 2), (8, 4), (16, 2), (32, 2))


def parse_grid(spec: str) -> tuple[tuple[int, int], ...]:
    """Parse ``"4x2,8x4"`` into ``((4, 2), (8, 4))`` (VS x TL pairs)."""
    pairs = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            vs, tl = (int(v) for v in part.lower().split("x"))
        except ValueError:
            raise ValueError(
                f"grid entry {part!r} must be VSxTL (e.g. 8x4)") from None
        if vs < 1 or tl < 1:
            raise ValueError(f"grid entry {part!r} must be positive")
        pairs.append((vs, tl))
    if not pairs:
        raise ValueError("empty specialization grid")
    return tuple(pairs)


def analyze_file(path: str) -> list[Finding]:
    """Statically check every SIMT kernel defined in one Python file."""
    with open(path) as f:
        source = f.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalysisError(
            f"{path}:{exc.lineno}: {exc.msg}") from None
    findings: list[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and is_kernel(node):
            for f_ in check_models(extract_kernel(node)):
                findings.append(Finding(
                    kind=f_.kind, kernel=f_.kernel, line=f_.line,
                    message=f_.message, file=path))
    return findings


def shipped_kernels_path() -> str:
    from ..kernels import simt_kernels
    return simt_kernels.__file__


def check_shipped() -> list[Finding]:
    """Race/barrier analysis of every shipped per-thread kernel."""
    return analyze_file(shipped_kernels_path())


def check_grid(grid: tuple[tuple[int, int], ...] = DEFAULT_GRID) \
        -> list[Finding]:
    """Lint generated dense kernels across a (VS, TL) specialization grid."""
    findings: list[Finding] = []
    for vs, tl in grid:
        findings.extend(check_specialization(vs * tl, vs, tl))
    return findings


def run_check(paths: list[str] | None = None,
              grid: tuple[tuple[int, int], ...] = DEFAULT_GRID) \
        -> list[Finding]:
    """Full check run; ``paths`` overrides the default shipped-kernel scope."""
    if paths:
        findings: list[Finding] = []
        for path in paths:
            if not os.path.exists(path):
                raise SystemExit(f"kernel file not found: {path}")
            findings.extend(analyze_file(path))
        return findings
    return check_shipped() + check_grid(grid)


def findings_json(findings: list[Finding]) -> str:
    return json.dumps([f.to_dict() for f in findings], indent=2)


def findings_text(findings: list[Finding], checked: str) -> str:
    lines = [f.describe() for f in findings]
    lines.append(f"{len(findings)} finding(s) over {checked}")
    return "\n".join(lines)
