"""Lint generated dense-kernel source for the Listing 2 register rules.

CUDA keeps an array in registers only when every index into it is a
compile-time constant; the paper therefore emits one specialized kernel per
``(n, VS, TL)`` with all register loops unrolled (Listing 2).  Our generator
(:func:`repro.kernels.codegen.generate_source`) mirrors that in host Python,
and this linter re-validates its output *as text*, independent of the
generator's own logic:

* ``codegen-nonconstant-index`` — every subscript bound must be a literal
  integer constant (a variable bound would spill the register array);
* ``codegen-coverage`` — the ``l_y``/``l_X``/``out`` slices must be disjoint,
  ``VS``-wide, and cover ``[0, n)`` exactly, in register order;
* ``codegen-accumulation`` — a single register accumulation chain:
  ``s = l_X1 @ l_y1`` then ``s += l_Xi @ l_yi`` for ``i = 2..TL`` in order,
  with the only other rebind being the ``v``-elementwise step.
"""

from __future__ import annotations

import ast
import re

from .model import Finding

_NAME_RE = re.compile(r"^mtmvm_(\d+)_(\d+)_(\d+)$")


def _finding(kind: str, kernel: str, line: int, message: str) -> Finding:
    return Finding(kind=kind, kernel=kernel, line=line, message=message)


def _const_int(node: ast.AST | None) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)):
        return -node.operand.value
    return None


def _slice_bounds(node: ast.AST) -> tuple[int | None, int | None, bool]:
    """(lower, upper, constant?) for one slice; non-slices are None."""
    if not isinstance(node, ast.Slice):
        return None, None, False
    if node.step is not None and _const_int(node.step) != 1:
        return None, None, False
    lo = _const_int(node.lower) if node.lower is not None else 0
    hi = _const_int(node.upper)
    return lo, hi, (lo is not None and hi is not None)


def _check_constant_indices(fn: ast.FunctionDef) -> list[Finding]:
    findings = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Subscript):
            continue
        parts = node.slice.elts if isinstance(node.slice, ast.Tuple) \
            else [node.slice]
        for part in parts:
            if isinstance(part, ast.Slice):
                full_row = (part.lower is None and part.upper is None
                            and part.step is None)
                _, _, const = _slice_bounds(part)
                if not (full_row or const):
                    findings.append(_finding(
                        "codegen-nonconstant-index", fn.name, node.lineno,
                        f"slice bound in {ast.unparse(node)!r} is not a "
                        "compile-time constant; the register array would "
                        "spill (Listing 2)"))
            elif _const_int(part) is None:
                findings.append(_finding(
                    "codegen-nonconstant-index", fn.name, node.lineno,
                    f"index in {ast.unparse(node)!r} is not a compile-time "
                    "integer constant"))
    return findings


def _reg_slices(fn: ast.FunctionDef, prefix: str) \
        -> dict[int, tuple[int | None, int | None, int]]:
    """register id -> (lo, hi, line) for ``l_y{i} = y[lo:hi]``-style loads."""
    out: dict[int, tuple[int | None, int | None, int]] = {}
    for stmt in fn.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            continue
        name = stmt.targets[0].id
        m = re.fullmatch(rf"{prefix}(\d+)", name)
        if not m or not isinstance(stmt.value, ast.Subscript):
            continue
        sl = stmt.value.slice
        if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
            sl = sl.elts[1]               # X[:, lo:hi] — the column slice
        lo, hi, _ = _slice_bounds(sl)
        out[int(m.group(1))] = (lo, hi, stmt.lineno)
    return out


def _out_slices(fn: ast.FunctionDef) \
        -> dict[int, tuple[int | None, int | None, int]]:
    """register id -> column slice for ``out[lo:hi] += alpha * l_w{i}``."""
    out: dict[int, tuple[int | None, int | None, int]] = {}
    for stmt in fn.body:
        if not (isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Subscript)
                and isinstance(stmt.target.value, ast.Name)
                and stmt.target.value.id == "out"):
            continue
        regs = [int(m.group(1)) for m in
                re.finditer(r"l_w(\d+)", ast.unparse(stmt.value))]
        if len(regs) != 1:
            continue
        lo, hi, _ = _slice_bounds(stmt.target.slice)
        out[regs[0]] = (lo, hi, stmt.lineno)
    return out


def _check_coverage(fn: ast.FunctionDef, n: int, vs: int, tl: int) \
        -> list[Finding]:
    findings = []
    families = {"l_y": _reg_slices(fn, "l_y"), "l_X": _reg_slices(fn, "l_X"),
                "out": _out_slices(fn)}
    for family, slices in families.items():
        if set(slices) != set(range(1, tl + 1)):
            findings.append(_finding(
                "codegen-coverage", fn.name, fn.lineno,
                f"{family} register ids are {sorted(slices)}, expected "
                f"1..{tl}"))
            continue
        family_clean = True
        covered: list[tuple[int, int]] = []
        for i in range(1, tl + 1):
            lo, hi, line = slices[i]
            want = ((i - 1) * vs, i * vs)
            if (lo, hi) != want:
                family_clean = False
                findings.append(_finding(
                    "codegen-coverage", fn.name, line,
                    f"{family}{i} covers [{lo}, {hi}), expected "
                    f"[{want[0]}, {want[1]}) — slices must be disjoint, "
                    f"VS-wide, and in register order"))
            if lo is not None and hi is not None:
                covered.append((lo, hi))
        cells = sorted(c for lo, hi in covered for c in range(lo, hi))
        if family_clean and cells != list(range(n)):
            findings.append(_finding(
                "codegen-coverage", fn.name, fn.lineno,
                f"{family} slices do not tile [0, {n}) exactly"))
    return findings


def _check_accumulation(fn: ast.FunctionDef, tl: int) -> list[Finding]:
    findings = []
    inits: list[tuple[int, str]] = []     # (line, rhs) for `s = ...`
    augs: list[tuple[int, str]] = []      # (line, rhs) for `s += ...`
    for node in ast.walk(fn):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "s"):
            inits.append((node.lineno, ast.unparse(node.value)))
        elif (isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == "s" and isinstance(node.op, ast.Add)):
            augs.append((node.lineno, ast.unparse(node.value)))
    chain_inits = [(ln, rhs) for ln, rhs in inits if rhs != "s * v"]
    if len(chain_inits) != 1 or chain_inits[0][1] != "l_X1 @ l_y1":
        findings.append(_finding(
            "codegen-accumulation", fn.name,
            chain_inits[0][0] if chain_inits else fn.lineno,
            f"accumulator must be initialized exactly once as "
            f"'s = l_X1 @ l_y1'; found {[r for _, r in chain_inits]}"))
    expected = [f"l_X{i} @ l_y{i}" for i in range(2, tl + 1)]
    if [rhs for _, rhs in augs] != expected:
        findings.append(_finding(
            "codegen-accumulation", fn.name,
            augs[0][0] if augs else fn.lineno,
            f"accumulation chain is {[r for _, r in augs]}, expected "
            f"{expected} (one '+=' per register, in order)"))
    return findings


def check_codegen_source(source: str, filename: str = "") -> list[Finding]:
    """Lint one generated kernel source; returns all rule violations."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_finding("codegen-coverage", "<unparseable>",
                         exc.lineno or 0,
                         f"generated source does not parse: {exc.msg}")]
    fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(fns) != 1:
        return [_finding("codegen-coverage", "<module>", 1,
                         f"expected exactly one generated function, found "
                         f"{len(fns)}")]
    fn = fns[0]
    m = _NAME_RE.match(fn.name)
    if not m:
        return [_finding("codegen-coverage", fn.name, fn.lineno,
                         "generated function name must be "
                         "mtmvm_<n>_<VS>_<TL>")]
    n, vs, tl = (int(g) for g in m.groups())
    if n != vs * tl:
        return [_finding("codegen-coverage", fn.name, fn.lineno,
                         f"specialization key n={n} != VS*TL={vs}*{tl}")]
    findings = _check_constant_indices(fn)
    findings += _check_coverage(fn, n, vs, tl)
    findings += _check_accumulation(fn, tl)
    if filename:
        findings = [Finding(kind=f.kind, kernel=f.kernel, line=f.line,
                            message=f.message, file=filename)
                    for f in findings]
    return findings


def check_specialization(n: int, vs: int, tl: int) -> list[Finding]:
    """Generate the ``(n, VS, TL)`` kernel and lint its source."""
    from ..kernels.codegen import generate_source
    return check_codegen_source(generate_source(n, vs, tl),
                                filename=f"<generated mtmvm_{n}_{vs}_{tl}>")


# ------------------------------------------------- fused cell-wise kernels --
_CELL_NAME_RE = re.compile(r"^cellwise_(\d+)_(\d+)_(\d+)$")
_CELL_LOCAL_RE = re.compile(r"l_a(\d+)s(\d+)")


def _cell_load_slices(fn: ast.FunctionDef) \
        -> tuple[dict[tuple[int, int], tuple[int | None, int | None, int]],
                 list[Finding]]:
    """``(input k, slice i) -> (lo, hi, line)`` for ``l_a{k}s{i} = ...``."""
    out: dict[tuple[int, int], tuple[int | None, int | None, int]] = {}
    findings: list[Finding] = []
    for stmt in fn.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            continue
        m = re.fullmatch(r"l_a(\d+)s(\d+)", stmt.targets[0].id)
        if not m:
            continue
        key = (int(m.group(1)), int(m.group(2)))
        if key in out:
            findings.append(_finding(
                "codegen-accumulation", fn.name, stmt.lineno,
                f"register l_a{key[0]}s{key[1]} is assigned more than once "
                "(registers are single-assignment)"))
            continue
        if not isinstance(stmt.value, ast.Subscript):
            findings.append(_finding(
                "codegen-coverage", fn.name, stmt.lineno,
                f"register l_a{key[0]}s{key[1]} must load a slice of its "
                "input array"))
            continue
        lo, hi, _ = _slice_bounds(stmt.value.slice)
        out[key] = (lo, hi, stmt.lineno)
    return out, findings


def _cell_out_stores(fn: ast.FunctionDef) \
        -> tuple[list[tuple[int | None, int | None, int, str]],
                 list[Finding]]:
    """Ordered ``out[lo:hi] = rhs`` stores plus accumulation violations."""
    stores: list[tuple[int | None, int | None, int, str]] = []
    findings: list[Finding] = []
    for stmt in fn.body:
        if (isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Subscript)
                and isinstance(stmt.target.value, ast.Name)
                and stmt.target.value.id == "out"):
            findings.append(_finding(
                "codegen-accumulation", fn.name, stmt.lineno,
                "fused cell-wise kernels must store each out slice exactly "
                "once with '='; '+=' re-reads global memory (read-modify-"
                "write hazard)"))
            continue
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Subscript)
                and isinstance(stmt.targets[0].value, ast.Name)
                and stmt.targets[0].value.id == "out"):
            continue
        lo, hi, _ = _slice_bounds(stmt.targets[0].slice)
        stores.append((lo, hi, stmt.lineno, ast.unparse(stmt.value)))
    return stores, findings


def check_cellwise_source(source: str, filename: str = "") -> list[Finding]:
    """Lint one generated fused cell-wise kernel (optimizer-emitted).

    Mirrors :func:`check_codegen_source` for the ``cellwise_<n>_<VS>_<TL>``
    family: constant slice bounds (register residency), per-input and
    per-store tiling of ``[0, n)`` in slice order, single-assignment
    registers, exactly one plain store per out slice, and no cross-slice
    register reads.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_finding("codegen-coverage", "<unparseable>",
                         exc.lineno or 0,
                         f"generated source does not parse: {exc.msg}")]
    fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(fns) != 1:
        return [_finding("codegen-coverage", "<module>", 1,
                         f"expected exactly one generated function, found "
                         f"{len(fns)}")]
    fn = fns[0]
    m = _CELL_NAME_RE.match(fn.name)
    if not m:
        return [_finding("codegen-coverage", fn.name, fn.lineno,
                         "generated function name must be "
                         "cellwise_<n>_<VS>_<TL>")]
    n, vs, tl = (int(g) for g in m.groups())
    if n != vs * tl:
        return [_finding("codegen-coverage", fn.name, fn.lineno,
                         f"specialization key n={n} != VS*TL={vs}*{tl}")]
    n_inputs = len(fn.args.args) - 1       # last parameter is `out`

    findings = _check_constant_indices(fn)
    loads, load_findings = _cell_load_slices(fn)
    findings += load_findings
    for k in range(n_inputs):
        ids = sorted(i for (kk, i) in loads if kk == k)
        if ids != list(range(1, tl + 1)):
            findings.append(_finding(
                "codegen-coverage", fn.name, fn.lineno,
                f"l_a{k} slice ids are {ids}, expected 1..{tl}"))
            continue
        for i in range(1, tl + 1):
            lo, hi, line = loads[(k, i)]
            want = ((i - 1) * vs, i * vs)
            if (lo, hi) != want:
                findings.append(_finding(
                    "codegen-coverage", fn.name, line,
                    f"l_a{k}s{i} covers [{lo}, {hi}), expected "
                    f"[{want[0]}, {want[1]})"))

    stores, store_findings = _cell_out_stores(fn)
    findings += store_findings
    got = [(lo, hi) for lo, hi, _, _ in stores]
    want_stores = [((i - 1) * vs, i * vs) for i in range(1, tl + 1)]
    if got != want_stores:
        findings.append(_finding(
            "codegen-coverage", fn.name,
            stores[0][2] if stores else fn.lineno,
            f"out stores cover {got}, expected {want_stores} (disjoint, "
            f"VS-wide, in slice order, exactly once each)"))
    for idx, (_, _, line, rhs) in enumerate(stores, start=1):
        wrong = sorted({f"l_a{k}s{i}"
                       for k, i in ((int(a), int(b)) for a, b
                                    in _CELL_LOCAL_RE.findall(rhs))
                       if i != idx})
        if wrong:
            findings.append(_finding(
                "codegen-accumulation", fn.name, line,
                f"store for slice {idx} reads registers of other slices: "
                f"{wrong}"))
    if filename:
        findings = [Finding(kind=f.kind, kernel=f.kernel, line=f.line,
                            message=f.message, file=filename)
                    for f in findings]
    return findings


def check_cellwise_specialization(n: int, vs: int, tl: int,
                                  program) -> list[Finding]:
    """Generate one fused cell-wise kernel and lint its source."""
    from ..kernels.codegen import generate_cellwise_source
    return check_cellwise_source(
        generate_cellwise_source(n, vs, tl, program),
        filename=f"<generated cellwise_{n}_{vs}_{tl}>")


# ------------------------------------------------------ AOT sparse kernels --
_SPARSE_NAME_RE = re.compile(
    r"^sparse_(spmv|spmvt|fused)_([0-9a-f]{8})_(\d+)_(\d+)(_v|_b|_vb)?$")

#: uppercase namespace constants a generated sparse kernel may reference
_SPARSE_CONSTANTS = {"VALUES", "COL_IDX", "STARTS", "NONEMPTY", "ROW_EXPAND"}

#: the only calls a flat sparse kernel may make
_SPARSE_CALLS = {"np.take", "np.multiply", "np.zeros",
                 "np.add.reduceat", "np.bincount"}

_SPARSE_FLOW = (ast.For, ast.While, ast.If, ast.IfExp, ast.Try, ast.With,
                ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
                ast.Lambda)


def _dotted_call_name(call: ast.Call) -> str | None:
    parts: list[str] = []
    node: ast.AST = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _check_sparse_flatness(fn: ast.FunctionDef) -> list[Finding]:
    """The emitted body must be straight-line NumPy: no control flow, no
    nested defs, and only the whitelisted vectorized calls (anything else
    would not map onto the single-launch kernel the source models)."""
    findings = []
    for node in ast.walk(fn):
        if node is fn:
            continue
        if isinstance(node, _SPARSE_FLOW
                      + (ast.FunctionDef, ast.AsyncFunctionDef)):
            findings.append(_finding(
                "codegen-flatness", fn.name, node.lineno,
                f"generated sparse kernels must be flat straight-line "
                f"code; found {type(node).__name__.lower()}"))
        elif isinstance(node, ast.Call):
            name = _dotted_call_name(node)
            if name not in _SPARSE_CALLS:
                findings.append(_finding(
                    "codegen-flatness", fn.name, node.lineno,
                    f"call to {name or ast.unparse(node.func)!r} is outside "
                    f"the sparse-kernel whitelist {sorted(_SPARSE_CALLS)}"))
    return findings


def _check_sparse_constants(fn: ast.FunctionDef) -> list[Finding]:
    """Every shape scalar must be baked as a literal and every subscript
    index must be one of the uppercase structure constants — the host-side
    mirror of Listing 2's compile-time specialization."""
    findings = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = _dotted_call_name(node)
            if name == "np.zeros" and (
                    not node.args or _const_int(node.args[0]) is None):
                findings.append(_finding(
                    "codegen-nonconstant-index", fn.name, node.lineno,
                    "np.zeros size must be a baked integer literal "
                    "(specialization constant)"))
            if name == "np.bincount":
                minlength = next((kw.value for kw in node.keywords
                                  if kw.arg == "minlength"), None)
                if _const_int(minlength) is None:
                    findings.append(_finding(
                        "codegen-nonconstant-index", fn.name, node.lineno,
                        "np.bincount minlength must be a baked integer "
                        "literal (specialization constant)"))
        elif isinstance(node, ast.Subscript):
            idx = node.slice
            if not (isinstance(idx, ast.Name)
                    and idx.id in _SPARSE_CONSTANTS):
                findings.append(_finding(
                    "codegen-nonconstant-index", fn.name, node.lineno,
                    f"subscript index in {ast.unparse(node)!r} must be an "
                    f"uppercase structure constant "
                    f"({sorted(_SPARSE_CONSTANTS)})"))
    return findings


def _reads_scratch(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id == "scratch"
               for sub in ast.walk(node))


def _check_sparse_scratch(fn: ast.FunctionDef, stage: str,
                          suffix: str) -> list[Finding]:
    """Scratch discipline and stage/flag consistency.

    ``scratch`` holds the gather product; reading it before the stage's
    ``np.take(..., out=scratch)`` wrote it consumes a stale buffer from a
    previous call (the classic reuse hazard).  For the fused family the
    optional stages must match the name suffix exactly: ``p = p * v`` iff
    ``_v`` and ``w = w + beta * z`` iff ``_b``.
    """
    findings = []
    written = False
    has_v_stage = False
    has_b_stage = False
    for stmt in fn.body:
        src = ast.unparse(stmt)
        if re.fullmatch(r"p = p \* v", src):
            has_v_stage = True
            continue
        if re.fullmatch(r"w = w \+ beta \* z", src):
            has_b_stage = True
            continue
        is_take_into_scratch = False
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and _dotted_call_name(node) == "np.take" \
                    and any(kw.arg == "out"
                            and isinstance(kw.value, ast.Name)
                            and kw.value.id == "scratch"
                            for kw in node.keywords):
                is_take_into_scratch = True
        if is_take_into_scratch:
            written = True
            continue
        if not written and _reads_scratch(stmt):
            findings.append(_finding(
                "codegen-accumulation", fn.name, stmt.lineno,
                "scratch is read before np.take(..., out=scratch) wrote "
                "it — stale gather buffer from a previous call"))
    if stage == "fused":
        want_v, want_b = "v" in suffix, "b" in suffix
        if has_v_stage != want_v:
            findings.append(_finding(
                "codegen-accumulation", fn.name, fn.lineno,
                f"fused specialization {suffix or '(no suffix)'} "
                f"{'must' if want_v else 'must not'} contain the "
                f"inter-vector stage 'p = p * v'"))
        if has_b_stage != want_b:
            findings.append(_finding(
                "codegen-accumulation", fn.name, fn.lineno,
                f"fused specialization {suffix or '(no suffix)'} "
                f"{'must' if want_b else 'must not'} contain the axpy "
                f"stage 'w = w + beta * z'"))
    elif has_v_stage or has_b_stage:
        findings.append(_finding(
            "codegen-accumulation", fn.name, fn.lineno,
            f"{stage} kernels must not contain fused-only stages"))
    return findings


def check_sparse_source(source: str, filename: str = "") -> list[Finding]:
    """Lint one generated AOT sparse kernel (any stage of the family).

    Rules, in the spirit of the dense Listing-2 lint but for the
    structure-specialized sparse generators:

    * ``codegen-flatness`` — straight-line body, whitelisted NumPy calls
      only, no control flow (degenerate structures bake their early exit
      at generation time, so a runtime branch is always a bug);
    * ``codegen-nonconstant-index`` — shape scalars are baked literals and
      subscripts index through uppercase structure constants;
    * ``codegen-accumulation`` — scratch is written by the stage's gather
      before it is read, and fused call-shape stages match the name suffix.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_finding("codegen-flatness", "<unparseable>",
                         exc.lineno or 0,
                         f"generated source does not parse: {exc.msg}")]
    fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(fns) != 1:
        return [_finding("codegen-flatness", "<module>", 1,
                         f"expected exactly one generated function, found "
                         f"{len(fns)}")]
    fn = fns[0]
    m = _SPARSE_NAME_RE.match(fn.name)
    if not m:
        return [_finding("codegen-flatness", fn.name, fn.lineno,
                         "generated function name must be "
                         "sparse_<stage>_<tag>_<VS>_<C>[_v|_b|_vb]")]
    stage, _tag, _vs, _c, suffix = m.groups()
    suffix = suffix or ""
    findings: list[Finding] = []
    if suffix and stage != "fused":
        findings.append(_finding(
            "codegen-flatness", fn.name, fn.lineno,
            f"call-shape suffix {suffix!r} is only valid on the fused "
            f"stage"))
    findings += _check_sparse_flatness(fn)
    findings += _check_sparse_constants(fn)
    findings += _check_sparse_scratch(fn, stage, suffix)
    if filename:
        findings = [Finding(kind=f.kind, kernel=f.kernel, line=f.line,
                            message=f.message, file=filename)
                    for f in findings]
    return findings
