"""Abstract kernel model for static SIMT analysis.

The extractor (:mod:`repro.analyze.extract`) lowers each per-thread generator
kernel into this representation: every shared/global memory access with its
*taint* (which thread identifiers its index depends on), every ``yield
BARRIER`` point with its enclosing control conditions, and every warp-shuffle
synchronization.  The checkers (:mod:`repro.analyze.checkers`) then reason
about barrier-delimited phases and index disjointness without ever executing
the kernel.

Taint lattice
-------------
An index expression carries a subset of ``{tid, block, data}``:

* ``tid``   — derived from ``ctx.tid`` (also lane/vector ids, ``lid``/``vid``);
* ``block`` — derived from ``ctx.block_id`` (``ctx.global_tid`` carries both);
* ``data``  — passed through a memory load (e.g. ``col_idx[i]``), so its
  value is unknown statically and may collide across threads.

Disjointness rules (the heart of the race checker):

* a **shared** access is thread-disjoint when ``tid`` is in its taint and
  ``data`` is not — tid-strided partitions (``range(tid, n, block_size)``)
  give every thread its own cells within the block;
* a **global** access is grid-disjoint when both ``tid`` and ``block`` are
  present and ``data`` is not — only a partition keyed by the *global*
  thread id (or a row id striding by ``grid_threads``) keeps different
  blocks out of each other's cells, the exact inter-block aggregation
  hazard of Algorithms 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

TID = "tid"
BLOCK = "block"
DATA = "data"

SHARED = "shared"
GLOBAL = "global"

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Guard:
    """One enclosing control condition (``if``/loop bound) of a statement."""

    taint: frozenset[str]
    text: str
    line: int


@dataclass(frozen=True)
class Access:
    """One static memory access site, annotated for the race checker."""

    space: str                  # SHARED | GLOBAL
    array: str                  # parameter name ("shared" for ctx.shared)
    kind: str                   # READ | WRITE
    atomic: bool
    index_taint: frozenset[str]
    phase: int                  # barrier-delimited region id
    line: int
    guards: tuple[Guard, ...] = ()

    @property
    def thread_disjoint(self) -> bool:
        return TID in self.index_taint and DATA not in self.index_taint

    @property
    def grid_disjoint(self) -> bool:
        return (TID in self.index_taint and BLOCK in self.index_taint
                and DATA not in self.index_taint)


@dataclass(frozen=True)
class SyncPoint:
    """A ``yield BARRIER`` or warp-shuffle suspension point."""

    kind: str                   # "barrier" | "shuffle"
    line: int
    guards: tuple[Guard, ...] = ()

    def divergent_guards(self) -> tuple[Guard, ...]:
        """Guards whose truth can differ between threads of one block."""
        return tuple(g for g in self.guards
                     if g.taint & {TID, DATA})


@dataclass
class KernelModel:
    """One analyzed control-flow path through a kernel."""

    name: str
    path: str = ""              # which uniform branches this path assumes
    accesses: list[Access] = field(default_factory=list)
    syncs: list[SyncPoint] = field(default_factory=list)
    phases: int = 1


@dataclass(frozen=True)
class Finding:
    """One checker result, stable across static and CLI output."""

    kind: str                   # shared-race | global-race | divergent-barrier
    #                           # | codegen-nonconstant-index
    #                           # | codegen-coverage | codegen-accumulation
    kernel: str
    line: int
    message: str
    file: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "kernel": self.kernel, "line": self.line,
                "message": self.message, "file": self.file}

    def describe(self) -> str:
        loc = f"{self.file}:{self.line}" if self.file else f"line {self.line}"
        return f"{loc} [{self.kind}] {self.kernel}: {self.message}"
