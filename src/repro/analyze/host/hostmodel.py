"""Abstract concurrency model for the threaded host modules.

The extractor (:mod:`repro.analyze.host.hostextract`) lowers each class of
a host module (server, router, engine, ...) into this representation: the
class's lock inventory, and per method every lock acquisition, attribute
access, blocking call, and condition wait/notify together with the set of
locks held at that point.  The checkers
(:mod:`repro.analyze.host.hostcheckers`) then reason about lock order,
access locksets, and wait discipline without executing anything.

Canonical lock names
--------------------
``threading.Condition(self._x)`` synchronizes on ``self._x``; a bare
``Condition()`` owns a private lock.  Every acquisition and held-set entry
is recorded under the *canonical* name — the underlying lock attribute —
so ``with self._not_empty:`` and ``with self._not_full:`` over one shared
lock never look like two locks (that aliasing is exactly what a naive
reading of the queue class would get wrong).

Held-set semantics
------------------
Held sets are *intra-class*: they name attributes of ``self`` only.  Locks
of other objects (a queue's internal lock seen from the server) are out of
static scope; the dynamic witness observes those orders at runtime.
Accesses inside ``__init__`` are ignored (construction happens-before
publication), as are bodies of nested functions and lambdas (deferred
execution contexts whose held-at-call-time set is unknowable statically).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model import Finding  # noqa: F401  (re-exported for host checkers)

LOCK = "lock"
RLOCK = "rlock"
CONDITION = "condition"
EVENT = "event"

READ = "read"
WRITE = "write"

#: finding kinds the host checkers emit
KIND_LOCK_ORDER = "lock-order-cycle"
KIND_ATOMICITY = "atomicity"
KIND_BLOCKING = "lock-held-blocking"
KIND_WAIT_LOOP = "wait-not-in-loop"
KIND_NOTIFY = "notify-without-lock"
KIND_RELEASE = "release-on-exception"
KIND_REENTRY = "lock-drop-reentry"

HOST_KINDS = (KIND_LOCK_ORDER, KIND_ATOMICITY, KIND_BLOCKING,
              KIND_WAIT_LOOP, KIND_NOTIFY, KIND_RELEASE, KIND_REENTRY)


@dataclass(frozen=True)
class LockInfo:
    """One synchronization attribute of a class."""

    name: str                   # attribute name ("_lock")
    kind: str                   # LOCK | RLOCK | CONDITION | EVENT
    underlying: str             # canonical lock this synchronizes on
    line: int


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` read or write site (non-lock attributes)."""

    attr: str
    kind: str                   # READ | WRITE
    line: int
    held: frozenset[str]        # canonical locks held (method-local)
    method: str
    #: (lock, critical-section ordinal) pairs active at this access; the
    #: ordinal increments each time the method re-enters the lock from a
    #: released state, which is what the lock-drop-reentry checker keys on
    sections: tuple[tuple[str, int], ...] = ()


@dataclass(frozen=True)
class LockAcquire:
    """One acquisition site (``with self._x:`` or ``self._x.acquire()``)."""

    lock: str                   # canonical name
    line: int
    held: frozenset[str]        # canonical locks already held here
    method: str
    via: str                    # "with" | "acquire"


@dataclass(frozen=True)
class BlockingCall:
    """A call that can stall the thread (join/recv/sleep/...)."""

    callee: str                 # rendered call target for the message
    line: int
    held: frozenset[str]
    method: str
    #: locks the call itself releases while blocked (``Condition.wait``
    #: releases its own lock); the checker subtracts these
    releases: frozenset[str] = frozenset()


@dataclass(frozen=True)
class WaitPoint:
    """A ``Condition.wait``/``wait_for`` site on a known condition attr."""

    cond: str                   # condition attribute name
    line: int
    held: frozenset[str]
    in_loop: bool               # lexically inside a while loop
    method: str


@dataclass(frozen=True)
class NotifyPoint:
    """A ``Condition.notify``/``notify_all`` site."""

    cond: str
    line: int
    held: frozenset[str]
    method: str


@dataclass(frozen=True)
class ManualRegion:
    """A bare ``acquire()`` and whether its release is exception-safe."""

    lock: str
    line: int                   # the acquire line
    method: str
    safe: bool                  # release sits in a try/finally


@dataclass(frozen=True)
class CallSite:
    """An intra-class ``self.method(...)`` call (for context propagation)."""

    callee: str
    line: int
    held: frozenset[str]


@dataclass
class MethodModel:
    """Everything extracted from one method body."""

    name: str
    line: int
    accesses: list[AttrAccess] = field(default_factory=list)
    acquires: list[LockAcquire] = field(default_factory=list)
    blocking: list[BlockingCall] = field(default_factory=list)
    waits: list[WaitPoint] = field(default_factory=list)
    notifies: list[NotifyPoint] = field(default_factory=list)
    manual: list[ManualRegion] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class ClassModel:
    """One analyzed class: lock inventory, methods, entry contexts."""

    name: str
    file: str
    line: int
    locks: dict[str, LockInfo] = field(default_factory=dict)
    methods: dict[str, MethodModel] = field(default_factory=dict)
    #: per method, the set of lock contexts it can be entered under —
    #: frozenset() for thread entry points, callers' held sets for
    #: internal helpers (computed by the extractor's fixpoint)
    contexts: dict[str, set[frozenset[str]]] = field(default_factory=dict)

    def canonical(self, attr: str) -> str | None:
        info = self.locks.get(attr)
        return info.underlying if info is not None else None

    def real_locks(self) -> set[str]:
        """Canonical lock names (conditions resolved, events excluded)."""
        return {info.underlying for info in self.locks.values()
                if info.kind in (LOCK, RLOCK, CONDITION)}
