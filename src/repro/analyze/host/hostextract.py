"""AST extraction of the host concurrency model.

Turns a Python source file into :class:`~repro.analyze.host.hostmodel.ClassModel`
instances.  The walk is statement-structured (not a flat ``ast.walk``) so the
extractor can track the stack of held locks through ``with`` nesting, pair
bare ``acquire()`` calls with their ``release()``, and number the distinct
critical sections a method opens on each lock (the input to the
lock-drop-reentry rule).

Deliberate approximations (documented, validated by the witness):

* ``__init__``/``__post_init__`` bodies are skipped — construction
  happens-before publication to other threads.
* Nested ``def``/``lambda`` bodies are skipped — they execute later, under
  an unknowable lock context (thread targets, callbacks, weakref
  finalizers).
* ``queue.Queue``-style ``put``/``get`` and message-framing helpers
  (``send_msg``/``recv_msg``) are *not* treated as blocking or mutating:
  they are internally synchronized or deliberately serialized by a
  dedicated write lock in shipped code, and taints there drown the signal.
* ``threading.Event`` and ``threading.local`` attributes are exempt from
  atomicity checking (internally synchronized), but ``Event.wait`` is
  still blocking taint.
"""

from __future__ import annotations

import ast
import re
from collections import deque
from pathlib import Path

from .hostmodel import (
    CONDITION,
    EVENT,
    LOCK,
    READ,
    RLOCK,
    WRITE,
    AttrAccess,
    BlockingCall,
    CallSite,
    ClassModel,
    LockAcquire,
    LockInfo,
    ManualRegion,
    MethodModel,
    NotifyPoint,
    WaitPoint,
)

#: threading constructors we inventory, mapped to lock kinds.  ``local`` is
#: grouped with Event: internally synchronized state, never a guard.
_LOCK_CTORS = {
    "Lock": LOCK,
    "RLock": RLOCK,
    "Condition": CONDITION,
    "Event": EVENT,
    "local": EVENT,
}

#: method names that mutate their receiver in place
MUTATORS = frozenset({
    "append", "appendleft", "add", "discard", "remove", "clear", "update",
    "setdefault", "pop", "popitem", "popleft", "extend", "insert", "sort",
    "reverse", "move_to_end",
})

#: attribute-call names that can stall the calling thread
BLOCKING_ATTRS = frozenset({
    "join", "wait", "accept", "connect", "recv", "recvfrom", "recv_into",
    "sendall", "result", "shutdown", "poll", "select", "sleep",
    "communicate",
})

_SKIPPED_METHODS = frozenset({"__init__", "__post_init__"})

_SUPPRESS_RE = re.compile(r"#\s*analyze:\s*allow\(([^)]*)\)")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> finding kinds allowed by ``# analyze: allow(...)``."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m is not None:
            kinds = frozenset(
                k.strip() for k in m.group(1).replace(",", " ").split() if k.strip()
            )
            if kinds:
                out[lineno] = kinds
    return out


def _is_self_attr(node: ast.AST) -> str | None:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _render(node: ast.AST) -> str:
    """Short dotted rendering of a call target, for messages."""
    if isinstance(node, ast.Attribute):
        return f"{_render(node.value)}.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return f"{_render(node.func)}()"
    return "<expr>"


def _lock_ctor(value: ast.AST) -> tuple[str, ast.AST | None] | None:
    """Recognize ``threading.Lock()`` style constructors.

    Returns ``(kind, condition_lock_arg)`` or ``None``.
    """
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "threading":
            name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name not in _LOCK_CTORS:
        return None
    arg: ast.AST | None = None
    if name == "Condition":
        if value.args:
            arg = value.args[0]
        else:
            for kw in value.keywords:
                if kw.arg == "lock":
                    arg = kw.value
    return _LOCK_CTORS[name], arg


def _collect_locks(cls_node: ast.ClassDef) -> dict[str, LockInfo]:
    """Inventory every ``self.x = threading.<sync>()`` in the class."""
    raw: dict[str, tuple[str, str | None, int]] = {}
    for node in ast.walk(cls_node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        attr = _is_self_attr(node.targets[0])
        if attr is None:
            continue
        ctor = _lock_ctor(node.value)
        if ctor is None:
            continue
        kind, cond_arg = ctor
        cond_attr = _is_self_attr(cond_arg) if cond_arg is not None else None
        if attr not in raw:
            raw[attr] = (kind, cond_attr, node.lineno)
    locks: dict[str, LockInfo] = {}
    for attr, (kind, cond_attr, line) in raw.items():
        if kind == CONDITION and cond_attr is not None:
            underlying = cond_attr  # Condition(self._x) synchronizes on _x
        else:
            underlying = attr
        locks[attr] = LockInfo(name=attr, kind=kind, underlying=underlying,
                               line=line)
    return locks


class _MethodWalker:
    """Walks one method body tracking the held-lock stack."""

    def __init__(self, cls: ClassModel, method: MethodModel,
                 method_names: frozenset[str]):
        self.cls = cls
        self.m = method
        self.method_names = method_names
        self.held: dict[str, int] = {}        # canonical lock -> depth
        self.cs_counter: dict[str, int] = {}  # canonical lock -> sections seen
        self.active_cs: dict[str, int] = {}   # canonical lock -> current ordinal
        self.while_depth = 0

    # -- state helpers ---------------------------------------------------
    def _held(self) -> frozenset[str]:
        return frozenset(self.held)

    def _sections(self) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(self.active_cs.items()))

    def _push(self, canon: str, line: int, via: str) -> None:
        self.m.acquires.append(
            LockAcquire(lock=canon, line=line, held=self._held(),
                        method=self.m.name, via=via))
        self.held[canon] = self.held.get(canon, 0) + 1
        if self.held[canon] == 1:
            self.cs_counter[canon] = self.cs_counter.get(canon, 0) + 1
            self.active_cs[canon] = self.cs_counter[canon]

    def _pop(self, canon: str) -> None:
        if canon in self.held:
            self.held[canon] -= 1
            if not self.held[canon]:
                del self.held[canon]
                self.active_cs.pop(canon, None)

    def _access(self, attr: str, kind: str, line: int) -> None:
        self.m.accesses.append(
            AttrAccess(attr=attr, kind=kind, line=line, held=self._held(),
                       method=self.m.name, sections=self._sections()))

    # -- statement walk --------------------------------------------------
    def walk_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # deferred execution context: out of scope
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_with(stmt)
        elif isinstance(stmt, ast.While):
            self.visit(stmt.test)
            self.while_depth += 1
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
            self.while_depth -= 1
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit(stmt.iter)
            self._store_target(stmt.target)
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.visit(stmt.test)
            self.walk_block(stmt.body)
            self.walk_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.walk_block(stmt.body)
            for handler in stmt.handlers:
                self.walk_block(handler.body)
            self.walk_block(stmt.orelse)
            self.walk_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            if not self._lock_op_stmt(stmt.value):
                self.visit(stmt.value)
        elif isinstance(stmt, ast.Assign):
            self.visit(stmt.value)
            for target in stmt.targets:
                self._store_target(target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.visit(stmt.value)
            self._store_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            self.visit(stmt.value)
            attr = self._store_root(stmt.target)
            if attr is not None:
                self._access(attr, READ, stmt.lineno)
                self._access(attr, WRITE, stmt.lineno)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._store_target(target)
        elif isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                self.visit(child)
        elif isinstance(stmt, (ast.Pass, ast.Break, ast.Continue,
                               ast.Global, ast.Nonlocal, ast.Import,
                               ast.ImportFrom)):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit(child)
                elif isinstance(child, ast.stmt):
                    self.walk_stmt(child)

    def _walk_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        entered: list[str] = []
        for item in stmt.items:
            attr = _is_self_attr(item.context_expr)
            canon = self.cls.canonical(attr) if attr is not None else None
            info = self.cls.locks.get(attr) if attr is not None else None
            if canon is not None and info is not None and info.kind != EVENT:
                self._push(canon, item.context_expr.lineno, via="with")
                entered.append(canon)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self._store_target(item.optional_vars)
        self.walk_block(stmt.body)
        for canon in reversed(entered):
            self._pop(canon)

    def _lock_op_stmt(self, expr: ast.expr) -> bool:
        """Handle statement-level ``self._x.acquire()`` / ``release()``."""
        if not (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)):
            return False
        recv = _is_self_attr(expr.func.value)
        if recv is None:
            return False
        info = self.cls.locks.get(recv)
        if info is None or info.kind == EVENT:
            return False
        canon = info.underlying
        if expr.func.attr == "acquire":
            for arg in expr.args:
                self.visit(arg)
            self._push(canon, expr.lineno, via="acquire")
            # A bare acquire is exception-safe only when the *next* thing
            # that can raise is inside a try whose finally releases it.
            # We approximate: safe iff some enclosing-method try/finally
            # releases this lock attr after this line (checked by the
            # method-level scan in extract_classes).
            self.m.manual.append(
                ManualRegion(lock=canon, line=expr.lineno,
                             method=self.m.name, safe=False))
            return True
        if expr.func.attr == "release":
            self._pop(canon)
            return True
        return False

    # -- expression walk -------------------------------------------------
    def visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            return
        if isinstance(node, ast.Call):
            self._visit_call(node)
            return
        if isinstance(node, ast.Attribute):
            attr = _is_self_attr(node)
            if attr is not None:
                if attr not in self.cls.locks:
                    kind = WRITE if isinstance(node.ctx, (ast.Store, ast.Del)) \
                        else READ
                    self._access(attr, kind, node.lineno)
                return
            self.visit(node.value)
            return
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        handled_receiver = False
        if isinstance(func, ast.Attribute):
            name = func.attr
            recv_attr = _is_self_attr(func.value)
            if recv_attr is not None and recv_attr in self.cls.locks:
                self._sync_attr_call(recv_attr, name, node)
                handled_receiver = True
            elif recv_attr is not None:
                if name in MUTATORS:
                    self._access(recv_attr, WRITE, node.lineno)
                else:
                    self._access(recv_attr, READ, node.lineno)
                if name in BLOCKING_ATTRS:
                    self.m.blocking.append(BlockingCall(
                        callee=f"self.{recv_attr}.{name}", line=node.lineno,
                        held=self._held(), method=self.m.name))
                handled_receiver = True
            elif (isinstance(func.value, ast.Name)
                  and func.value.id == "self"):
                if name in self.method_names:
                    self.m.calls.append(CallSite(
                        callee=name, line=node.lineno, held=self._held()))
                handled_receiver = True
            elif name in BLOCKING_ATTRS:
                self.m.blocking.append(BlockingCall(
                    callee=_render(func), line=node.lineno,
                    held=self._held(), method=self.m.name))
            if not handled_receiver:
                self.visit(func.value)
        else:
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _sync_attr_call(self, attr: str, name: str, node: ast.Call) -> None:
        """A method call on a lock/condition/event attribute."""
        info = self.cls.locks[attr]
        canon = info.underlying
        if info.kind == CONDITION and name in ("wait", "wait_for"):
            self.m.waits.append(WaitPoint(
                cond=attr, line=node.lineno, held=self._held(),
                in_loop=(self.while_depth > 0 or name == "wait_for"),
                method=self.m.name))
            # Condition.wait releases its own lock while blocked; any
            # *other* held lock is real blocking taint.
            self.m.blocking.append(BlockingCall(
                callee=f"self.{attr}.{name}", line=node.lineno,
                held=self._held(), method=self.m.name,
                releases=frozenset({canon})))
        elif info.kind == CONDITION and name in ("notify", "notify_all"):
            self.m.notifies.append(NotifyPoint(
                cond=attr, line=node.lineno, held=self._held(),
                method=self.m.name))
        elif info.kind == EVENT and name in BLOCKING_ATTRS:
            self.m.blocking.append(BlockingCall(
                callee=f"self.{attr}.{name}", line=node.lineno,
                held=self._held(), method=self.m.name))
        elif name == "acquire":
            # expression-position acquire (e.g. ``if lock.acquire(False):``)
            # cannot be paired with a structured release — flag it.
            self._push(canon, node.lineno, via="acquire")
            self.m.manual.append(ManualRegion(
                lock=canon, line=node.lineno, method=self.m.name,
                safe=False))
        elif name == "release":
            self._pop(canon)

    # -- store-target classification ------------------------------------
    def _store_root(self, target: ast.AST) -> str | None:
        """Resolve a store target to a first-level ``self`` attribute."""
        attr = _is_self_attr(target)
        if attr is not None:
            return None if attr in self.cls.locks else attr
        if isinstance(target, ast.Subscript):
            self.visit(target.slice)
            return self._store_root(target.value)
        if isinstance(target, ast.Attribute):
            # self._stats.field = v mutates the *_stats object*, which only
            # reads the _stats binding itself
            self.visit(target.value)
            return None
        return None

    def _store_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt)
            return
        if isinstance(target, ast.Starred):
            self._store_target(target.value)
            return
        attr = self._store_root(target)
        if attr is not None:
            self._access(attr, WRITE, target.lineno)
        elif isinstance(target, ast.Name):
            pass
        elif _is_self_attr(target) is None and not isinstance(
                target, (ast.Subscript, ast.Attribute)):
            self.visit(target)


def _mark_safe_manual(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                      cls: ClassModel, method: MethodModel) -> None:
    """Upgrade bare acquires whose release provably sits in a finally.

    The structured pattern we accept is ``x.acquire()`` immediately
    followed (same statement list) by a ``try:`` whose ``finally`` calls
    ``x.release()``.
    """
    safe_lines: set[int] = set()

    def scan(stmts: list[ast.stmt]) -> None:
        for idx, stmt in enumerate(stmts):
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Attribute)
                    and stmt.value.func.attr == "acquire"):
                recv = _is_self_attr(stmt.value.func.value)
                if recv is not None and recv in cls.locks:
                    nxt = stmts[idx + 1] if idx + 1 < len(stmts) else None
                    if isinstance(nxt, ast.Try) and _finally_releases(
                            nxt, recv):
                        safe_lines.add(stmt.value.lineno)
            # recurse into nested statement lists
            for field_name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field_name, None)
                if isinstance(sub, list) and sub and isinstance(
                        sub[0], ast.stmt):
                    scan(sub)
            for handler in getattr(stmt, "handlers", []) or []:
                scan(handler.body)

    def _finally_releases(try_stmt: ast.Try, attr: str) -> bool:
        for stmt in try_stmt.finalbody:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and _is_self_attr(sub.func.value) == attr):
                    return True
        return False

    scan(fn.body)
    if safe_lines:
        method.manual = [
            region if region.line not in safe_lines
            else ManualRegion(lock=region.lock, line=region.line,
                              method=region.method, safe=True)
            for region in method.manual
        ]


def _compute_contexts(cls: ClassModel) -> None:
    """Fixpoint over intra-class calls: lock contexts each method runs under.

    Entry points — public methods, plus private methods never *called*
    intra-class (thread targets, pool submissions, and callbacks reference
    methods without calling them) — start with the empty context.  A call
    from ``m`` under held set ``H`` while ``m`` runs in context ``C`` adds
    context ``C | H`` to the callee.
    """
    called = {cs.callee for m in cls.methods.values() for cs in m.calls}
    contexts: dict[str, set[frozenset[str]]] = {
        name: set() for name in cls.methods
    }
    work: deque[str] = deque()
    for name in cls.methods:
        if not name.startswith("_") or name not in called:
            contexts[name].add(frozenset())
            work.append(name)
    while work:
        name = work.popleft()
        method = cls.methods[name]
        for ctx in list(contexts[name]):
            for cs in method.calls:
                if cs.callee not in cls.methods:
                    continue
                new = ctx | cs.held
                if new not in contexts[cs.callee]:
                    contexts[cs.callee].add(new)
                    work.append(cs.callee)
    cls.contexts = contexts


def extract_classes(source: str, file: str | Path = "<string>"
                    ) -> list[ClassModel]:
    """Extract concurrency models for every lock-owning class in *source*."""
    tree = ast.parse(source, filename=str(file))
    out: list[ClassModel] = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        locks = _collect_locks(node)
        cls = ClassModel(name=node.name, file=str(file), line=node.lineno,
                         locks=locks)
        if not cls.real_locks():
            continue  # nothing to check without a real lock
        fns = [n for n in node.body
               if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        method_names = frozenset(fn.name for fn in fns)
        for fn in fns:
            method = MethodModel(name=fn.name, line=fn.lineno)
            cls.methods[fn.name] = method
            if fn.name in _SKIPPED_METHODS:
                continue
            walker = _MethodWalker(cls, method, method_names)
            walker.walk_block(fn.body)
            _mark_safe_manual(fn, cls, method)
        _compute_contexts(cls)
        out.append(cls)
    return out
