"""Dynamic lock-order witness: runtime cross-validation of the static model.

``instrument_locks(witness, obj, ...)`` swaps an object's ``threading``
locks for tracing wrappers that record, per thread, the acquisition DAG
(which lock was taken while which others were held), hold durations, wait
call sites, and notify discipline — while the *existing* serve/cluster
scenarios run unmodified.  ``cross_validate`` then confirms or refutes
every statically predicted lock-order edge: on shipped code the static
edge set must be a subset of the witnessed one and no witnessed edge may
invert a static edge.

Instrument **before** any thread can be waiting on a Condition: conditions
are rebuilt around the traced lock, and a waiter parked in the old
condition would never see a notify on the new one.  (Wrapping the lock
itself is safe at any time — the wrapper delegates to the *same*
underlying lock object, so traced and untraced holders still exclude each
other.)

``watch_attrs`` adds Eraser-style dynamic lockset sampling for chosen
attributes via a synthesized property subclass, confirming static
guarded-attribute claims on live objects.
"""

from __future__ import annotations

import ast
import sys
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field

from .hostmodel import (
    KIND_ATOMICITY,
    KIND_BLOCKING,
    KIND_LOCK_ORDER,
    KIND_NOTIFY,
    KIND_REENTRY,
    KIND_RELEASE,
    KIND_WAIT_LOOP,
)

_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))


@dataclass
class _HoldFrame:
    name: str
    t0: float
    count: int = 1
    func: str = ""
    frame_id: int = 0


class LockWitness:
    """Collects lock events from every :class:`TracedLock` bound to it."""

    def __init__(self, hold_threshold_ms: float | None = None,
                 track_reentry: bool = False):
        self._mu = threading.Lock()
        self.hold_threshold_ms = hold_threshold_ms
        self.track_reentry = track_reentry
        #: (held, acquired) -> observation count
        self.edges: dict[tuple[str, str], int] = defaultdict(int)
        self.acquire_counts: dict[str, int] = defaultdict(int)
        self.max_hold_ms: dict[str, float] = defaultdict(float)
        #: wait call sites: (file, line, lock name)
        self.wait_sites: set[tuple[str, int, str]] = set()
        self.notify_violations: list[tuple[str, str]] = []
        #: (function name, frame id) -> per-lock hold-session count
        self.reentry_sessions: dict[tuple[str, int, str], int] = \
            defaultdict(int)
        self._stacks: dict[int, list[_HoldFrame]] = {}
        #: watched attribute -> lockset samples / locked-write flag
        self.access_locksets: dict[str, set[frozenset[str]]] = \
            defaultdict(set)
        self.locked_writes: set[str] = set()

    # ----------------------------------------------------------- lock stack
    def _stack(self) -> list[_HoldFrame]:
        tid = threading.get_ident()
        with self._mu:
            return self._stacks.setdefault(tid, [])

    def held_names(self) -> list[str]:
        return [f.name for f in self._stack()]

    def on_acquire(self, name: str, caller) -> None:
        stack = self._stack()
        with self._mu:
            self.acquire_counts[name] += 1
        for frame_ in stack:
            if frame_.name == name:
                frame_.count += 1
                return
        with self._mu:
            for frame_ in stack:
                if frame_.name != name:
                    self.edges[(frame_.name, name)] += 1
        func = caller.f_code.co_name if caller is not None else ""
        frame_id = id(caller) if caller is not None else 0
        if self.track_reentry and caller is not None:
            key = (func, frame_id, name)
            with self._mu:
                self.reentry_sessions[key] += 1
        stack.append(_HoldFrame(name=name, t0=time.monotonic(),
                                func=func, frame_id=frame_id))

    def on_release(self, name: str) -> None:
        stack = self._stack()
        for idx in range(len(stack) - 1, -1, -1):
            if stack[idx].name == name:
                stack[idx].count -= 1
                if stack[idx].count == 0:
                    held_ms = (time.monotonic() - stack[idx].t0) * 1e3
                    with self._mu:
                        self.max_hold_ms[name] = max(
                            self.max_hold_ms[name], held_ms)
                    del stack[idx]
                return

    def record_wait_site(self, name: str, frame) -> None:
        with self._mu:
            self.wait_sites.add(
                (frame.f_code.co_filename, frame.f_lineno, name))

    def record_notify_violation(self, name: str, func: str) -> None:
        with self._mu:
            self.notify_violations.append((name, func))

    def record_access(self, key: str, kind: str) -> None:
        held = frozenset(self.held_names())
        with self._mu:
            self.access_locksets[key].add(held)
            if kind == "write" and held:
                self.locked_writes.add(key)

    # ------------------------------------------------------------- verdicts
    def witnessed_edges(self) -> set[tuple[str, str]]:
        return set(self.edges)

    def order_cycles(self) -> list[list[str]]:
        """Cycles in the witnessed acquisition DAG (deadlock-capable)."""
        graph: dict[str, set[str]] = defaultdict(set)
        for a, b in self.edges:
            graph[a].add(b)
        cycles: list[list[str]] = []
        state: dict[str, int] = {}
        path: list[str] = []

        def dfs(v: str) -> None:
            state[v] = 1
            path.append(v)
            for w in sorted(graph.get(v, ())):
                if state.get(w, 0) == 0:
                    dfs(w)
                elif state.get(w) == 1:
                    cycles.append(path[path.index(w):] + [w])
            path.pop()
            state[v] = 2

        for v in sorted(graph):
            if state.get(v, 0) == 0:
                dfs(v)
        return cycles

    def racy_attrs(self) -> list[str]:
        """Watched attrs whose observed lockset intersection is empty even
        though some write held a lock (the dynamic atomicity verdict)."""
        out = []
        for key, samples in sorted(self.access_locksets.items()):
            if key not in self.locked_writes:
                continue
            if not frozenset.intersection(*samples):
                out.append(key)
        return out

    def slow_holds(self) -> list[str]:
        if self.hold_threshold_ms is None:
            return []
        return sorted(name for name, ms in self.max_hold_ms.items()
                      if ms > self.hold_threshold_ms)

    def waits_not_in_loop(self) -> list[tuple[str, int, str]]:
        """Executed wait sites whose source is not inside a ``while``."""
        out = []
        by_file: dict[str, list[tuple[int, str]]] = defaultdict(list)
        for fname, line, lock in self.wait_sites:
            by_file[fname].append((line, lock))
        for fname, sites in by_file.items():
            try:
                with open(fname) as f:
                    tree = ast.parse(f.read())
            except (OSError, SyntaxError):
                continue
            while_spans = [
                (node.lineno, max(getattr(n, "lineno", node.lineno)
                                  for n in ast.walk(node)))
                for node in ast.walk(tree) if isinstance(node, ast.While)
            ]
            for line, lock in sites:
                if not any(lo <= line <= hi for lo, hi in while_spans):
                    out.append((fname, line, lock))
        return sorted(out)

    def leaked_locks(self) -> list[str]:
        """Locks still held on some thread's stack (release never ran)."""
        with self._mu:
            stacks = list(self._stacks.values())
        return sorted({f.name for stack in stacks for f in stack})

    def reentry_functions(self) -> list[tuple[str, str]]:
        """(function, lock) pairs where one invocation dropped and retook
        the lock (only meaningful with ``track_reentry=True``)."""
        return sorted({(func, lock)
                       for (func, _fid, lock), n
                       in self.reentry_sessions.items() if n > 1})

    def dynamic_kinds(self) -> set[str]:
        """Finding kinds the run actually witnessed (mutant-corpus parity)."""
        kinds = set()
        if self.order_cycles():
            kinds.add(KIND_LOCK_ORDER)
        if self.racy_attrs():
            kinds.add(KIND_ATOMICITY)
        if self.slow_holds():
            kinds.add(KIND_BLOCKING)
        if self.waits_not_in_loop():
            kinds.add(KIND_WAIT_LOOP)
        if self.notify_violations:
            kinds.add(KIND_NOTIFY)
        if self.leaked_locks():
            kinds.add(KIND_RELEASE)
        if self.reentry_functions():
            kinds.add(KIND_REENTRY)
        return kinds


class TracedLock:
    """Delegating wrapper around a ``Lock``/``RLock`` that reports to a
    :class:`LockWitness`.  Mutual exclusion stays with the wrapped inner
    lock, so traced and untraced references interoperate."""

    def __init__(self, name: str, inner, witness: LockWitness):
        self.name = name
        self.inner = inner
        self.witness = witness

    def _caller(self):
        # walk out of our own frames (acquire/__enter__) and threading.py
        # (Condition delegation) to the user frame that took the lock
        frame = sys._getframe(1)
        while frame is not None and (
                frame.f_code.co_filename == __file__
                or frame.f_code.co_filename.endswith("threading.py")):
            frame = frame.f_back
        return frame

    def acquire(self, blocking: bool = True, timeout: float = -1):
        got = self.inner.acquire(blocking, timeout)
        if got:
            self.witness.on_acquire(self.name, self._caller())
        return got

    def release(self) -> None:
        self.witness.on_release(self.name)
        self.inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self.inner.locked()

    def __getattr__(self, item):
        # delegate RLock internals (_release_save/_acquire_restore/
        # _is_owned) so threading.Condition can drive the inner lock;
        # the stack entry simply persists across the wait, which is
        # harmless because the waiting thread acquires nothing meanwhile
        return getattr(self.inner, item)


class TracedCondition(threading.Condition):
    """``threading.Condition`` over a :class:`TracedLock` that also records
    wait call sites and notify discipline."""

    def __init__(self, lock: TracedLock, name: str, witness: LockWitness):
        super().__init__(lock)
        self._witness = witness
        self._name = name
        self._lock_name = lock.name

    def wait(self, timeout: float | None = None):
        frame = sys._getframe(1)
        self._witness.record_wait_site(self._name, frame)
        return super().wait(timeout)

    def _owned_here(self) -> bool:
        return self._lock_name in self._witness.held_names()

    def notify(self, n: int = 1) -> None:
        if not self._owned_here():
            self._witness.record_notify_violation(
                self._name, sys._getframe(1).f_code.co_name)
        super().notify(n)

    def notify_all(self) -> None:
        if not self._owned_here():
            self._witness.record_notify_violation(
                self._name, sys._getframe(1).f_code.co_name)
        super().notify_all()


def instrument_object(witness: LockWitness, obj, prefix: str | None = None
                      ) -> list[str]:
    """Swap *obj*'s lock attributes for traced wrappers.

    Returns the instrumented attribute names.  Conditions are rebuilt
    around the traced underlying lock (aliasing detected by identity), so
    call this before any thread is parked in a wait.
    """
    prefix = prefix or type(obj).__name__
    d = getattr(obj, "__dict__", None)
    if d is None:
        return []
    done: list[str] = []
    by_identity: dict[int, TracedLock] = {}
    for attr, val in sorted(d.items()):
        if isinstance(val, _LOCK_TYPES):
            traced = TracedLock(f"{prefix}.{attr}", val, witness)
            by_identity[id(val)] = traced
            setattr(obj, attr, traced)
            done.append(attr)
    for attr, val in sorted(d.items()):
        if isinstance(val, threading.Condition):
            inner = val._lock
            traced = by_identity.get(id(inner))
            if traced is None:
                if isinstance(inner, TracedLock):
                    traced = inner
                else:
                    traced = TracedLock(f"{prefix}.{attr}", inner, witness)
            setattr(obj, attr,
                    TracedCondition(traced, f"{prefix}.{attr}", witness))
            done.append(attr)
    return done


def instrument_locks(witness: LockWitness, *objects,
                     prefixes: dict[int, str] | None = None
                     ) -> dict[str, list[str]]:
    """Instrument several objects at once; returns {prefix: [attrs]}."""
    out: dict[str, list[str]] = {}
    for obj in objects:
        prefix = (prefixes or {}).get(id(obj)) or type(obj).__name__
        out[prefix] = instrument_object(witness, obj, prefix=prefix)
    return out


def watch_attrs(witness: LockWitness, obj, attrs: list[str],
                prefix: str | None = None) -> None:
    """Sample the lockset of every access to *attrs* on *obj*.

    Implemented by retyping *obj* to a synthesized subclass whose data
    descriptors report each read/write together with the locks the
    accessing thread currently holds (per the witness stacks).
    """
    prefix = prefix or type(obj).__name__
    cls = type(obj)
    namespace = {}
    for attr in attrs:
        secret = f"_watched__{attr}"
        key = f"{prefix}.{attr}"

        def make_property(secret=secret, key=key):
            def fget(self):
                witness.record_access(key, "read")
                return self.__dict__[secret]

            def fset(self, value):
                witness.record_access(key, "write")
                self.__dict__[secret] = value

            return property(fget, fset)

        namespace[attr] = make_property()
    sub = type(f"{cls.__name__}Watched", (cls,), namespace)
    for attr in attrs:
        if attr in obj.__dict__:
            obj.__dict__[f"_watched__{attr}"] = obj.__dict__.pop(attr)
    obj.__class__ = sub


@dataclass
class CrossValidation:
    """Outcome of comparing static lock-order edges with the witness."""

    confirmed: set[tuple[str, str]] = field(default_factory=set)
    unobserved: set[tuple[str, str]] = field(default_factory=set)
    #: static edges whose *reverse* was witnessed — a refutation of the
    #: static total-order claim that must be empty on shipped code
    inversions: set[tuple[str, str]] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.inversions


def cross_validate(static_edges: set[tuple[str, str]],
                   witness: LockWitness) -> CrossValidation:
    """Compare per-class static edges (``ClassName.attr`` qualified) with
    the witnessed acquisition DAG."""
    seen = witness.witnessed_edges()
    result = CrossValidation()
    for edge in static_edges:
        if edge in seen:
            result.confirmed.add(edge)
        else:
            result.unobserved.add(edge)
        if (edge[1], edge[0]) in seen:
            result.inversions.add(edge)
    return result


def qualify_edges(cls_name: str,
                  edges: dict[tuple[str, str], tuple[str, int]]
                  ) -> set[tuple[str, str]]:
    """Static per-class edges -> witness naming (``Class.attr`` pairs)."""
    return {(f"{cls_name}.{a}", f"{cls_name}.{b}") for a, b in edges}
