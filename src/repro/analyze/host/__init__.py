"""Host-side concurrency analyzer: lock discipline for the threaded stack.

``analyze_host_file`` runs extraction + checkers + suppression filtering on
one Python source file; ``run_host_check`` covers the shipped host modules
(engine, serve, cluster, trace) that own threads or locks.  The dynamic
counterpart lives in :mod:`repro.analyze.host.witness`.
"""

from __future__ import annotations

from pathlib import Path

from ..extract import AnalysisError
from ..model import Finding
from .hostcheckers import (apply_suppressions, check_class,
                           lock_order_edges)
from .hostextract import extract_classes, parse_suppressions
from .hostmodel import HOST_KINDS, ClassModel

_REPRO_ROOT = Path(__file__).resolve().parents[2]

#: shipped modules that own locks or threads; resolved relative to the
#: package so the checker needs no imports of the code under analysis
HOST_MODULE_FILES: tuple[str, ...] = tuple(
    str(_REPRO_ROOT / rel) for rel in (
        "core/engine.py",
        "serve/server.py",
        "serve/queue.py",
        "serve/request.py",
        "serve/sched.py",
        "serve/metrics.py",
        "cluster/router.py",
        "cluster/channel.py",
        "cluster/worker.py",
        "cluster/hotkeys.py",
        "cluster/client.py",
        "cluster/request.py",
        "trace/span.py",
    )
)


def analyze_host_file(path: str) -> tuple[list[Finding], list[Finding]]:
    """Check one file; returns ``(active, suppressed)`` findings."""
    with open(path) as f:
        source = f.read()
    try:
        classes = extract_classes(source, file=path)
    except SyntaxError as exc:
        raise AnalysisError(f"{path}:{exc.lineno}: {exc.msg}") from None
    findings: list[Finding] = []
    for cls in classes:
        findings.extend(check_class(cls))
    findings.sort(key=lambda f: (f.line, f.kind, f.kernel))
    return apply_suppressions(findings, classes, parse_suppressions(source))


def run_host_check(paths: list[str] | None = None) \
        -> tuple[list[Finding], list[Finding]]:
    """Host concurrency check; ``paths`` overrides the shipped scope."""
    targets = list(paths) if paths else list(HOST_MODULE_FILES)
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for path in targets:
        if not Path(path).exists():
            raise SystemExit(f"host module not found: {path}")
        got_active, got_suppressed = analyze_host_file(path)
        active.extend(got_active)
        suppressed.extend(got_suppressed)
    return active, suppressed


def host_classes(path: str) -> list[ClassModel]:
    """Extracted models for one file (used by the witness cross-check)."""
    with open(path) as f:
        source = f.read()
    return extract_classes(source, file=path)


__all__ = [
    "AnalysisError",
    "HOST_KINDS",
    "HOST_MODULE_FILES",
    "analyze_host_file",
    "apply_suppressions",
    "check_class",
    "extract_classes",
    "host_classes",
    "lock_order_edges",
    "parse_suppressions",
    "run_host_check",
]
