"""Lock-discipline checkers over the extracted host concurrency model.

Rule catalog (finding kinds):

``lock-order-cycle``
    The per-class lock-order graph (edge A→B when B is acquired while A is
    held, on any reachable context) contains a cycle — two threads taking
    the locks in opposite orders can deadlock.
``atomicity``
    An attribute is written under a lock on one path but accessed with an
    empty guard intersection overall (bare, or under a different lock) on
    another reachable path.  The Eraser-style lockset rule: candidate
    guards are intersected across every access; flagged only when some
    write actually held a lock, so single-thread state never trips it.
``lock-held-blocking``
    A call that can stall the thread (join/recv/accept/sleep/result/...)
    executes while holding a lock.  ``Condition.wait`` releases its own
    lock and is only flagged for *other* held locks.
``wait-not-in-loop``
    ``Condition.wait`` outside a ``while`` predicate loop — wakeups are
    spurious and the predicate must be rechecked.  ``wait_for`` loops
    internally and is exempt.
``notify-without-lock``
    ``Condition.notify``/``notify_all`` without holding the condition's
    underlying lock (raises ``RuntimeError`` at runtime).
``release-on-exception``
    A bare ``acquire()`` whose release is not in a ``try/finally`` — an
    exception leaks the lock.
``lock-drop-reentry``
    Within one method, state read under a lock is written in a *later*
    critical section of the same lock — the classic double-checked
    check-then-act where the world may change between the sections.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from ..model import Finding
from .hostmodel import (
    KIND_ATOMICITY,
    KIND_BLOCKING,
    KIND_LOCK_ORDER,
    KIND_NOTIFY,
    KIND_REENTRY,
    KIND_RELEASE,
    KIND_WAIT_LOOP,
    WRITE,
    ClassModel,
)


def _effective(cls: ClassModel, method: str,
               held: frozenset[str]) -> list[frozenset[str]]:
    """Expand a method-local held set by every reachable entry context."""
    contexts = cls.contexts.get(method) or {frozenset()}
    return [ctx | held for ctx in contexts]


def _finding(cls: ClassModel, kind: str, method: str, line: int,
             message: str) -> Finding:
    return Finding(kind=kind, kernel=f"{cls.name}.{method}", line=line,
                   message=message, file=cls.file)


def lock_order_edges(cls: ClassModel) \
        -> dict[tuple[str, str], tuple[str, int]]:
    """All held→acquired edges with a representative (method, line) each."""
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    for method in cls.methods.values():
        for acq in method.acquires:
            for eff in _effective(cls, method.name, acq.held):
                for held in eff:
                    if held == acq.lock:
                        continue
                    edges.setdefault((held, acq.lock),
                                     (method.name, acq.line))
    return edges


def _cycles(edges: dict[tuple[str, str], tuple[str, int]]) \
        -> list[list[str]]:
    """Strongly connected components of size > 1 (deadlock-capable sets)."""
    graph: dict[str, set[str]] = defaultdict(set)
    for a, b in edges:
        graph[a].add(b)
        graph.setdefault(b, set())
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(graph[v]):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            scc = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                scc.append(w)
                if w == v:
                    break
            if len(scc) > 1:
                sccs.append(sorted(scc))

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sccs


def check_lock_order(cls: ClassModel) -> list[Finding]:
    edges = lock_order_edges(cls)
    findings = []
    for scc in _cycles(edges):
        members = set(scc)
        intra = sorted(
            ((a, b, meth, line) for (a, b), (meth, line) in edges.items()
             if a in members and b in members),
            key=lambda e: e[3])
        parts = ", ".join(f"{a}->{b} ({meth}:{line})"
                          for a, b, meth, line in intra)
        anchor = intra[0]
        findings.append(_finding(
            cls, KIND_LOCK_ORDER, anchor[2], anchor[3],
            f"locks {{{', '.join(scc)}}} are acquired in conflicting "
            f"orders: {parts}; opposing threads can deadlock"))
    return findings


def check_atomicity(cls: ClassModel) -> list[Finding]:
    samples: dict[str, list[tuple]] = defaultdict(list)
    for method in cls.methods.values():
        for acc in method.accesses:
            for eff in _effective(cls, method.name, acc.held):
                samples[acc.attr].append((acc, eff))
    findings = []
    for attr in sorted(samples):
        rows = samples[attr]
        lockset = frozenset.intersection(*(eff for _, eff in rows))
        if lockset:
            continue
        locked_writes = [(acc, eff) for acc, eff in rows
                         if acc.kind == WRITE and eff]
        if not locked_writes:
            continue  # never written under a lock: single-thread state
        guard = Counter(
            lock for _, eff in locked_writes for lock in eff
        ).most_common(1)[0][0]
        write_acc = min((acc for acc, _ in locked_writes),
                        key=lambda a: a.line)
        bare = min((acc for acc, eff in rows if guard not in eff),
                   key=lambda a: a.line)
        findings.append(_finding(
            cls, KIND_ATOMICITY, bare.method, bare.line,
            f"attribute '{attr}' is written under {guard} "
            f"({write_acc.method}:{write_acc.line}) but accessed without "
            f"it here; a racing thread can observe torn state"))
    return findings


def check_blocking(cls: ClassModel) -> list[Finding]:
    findings = []
    seen: set[tuple[int, str]] = set()
    for method in cls.methods.values():
        for call in method.blocking:
            for eff in _effective(cls, method.name, call.held):
                stalled = eff - call.releases
                if not stalled:
                    continue
                key = (call.line, call.callee)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(_finding(
                    cls, KIND_BLOCKING, method.name, call.line,
                    f"blocking call {call.callee}() while holding "
                    f"{{{', '.join(sorted(stalled))}}}; every thread "
                    f"contending on the lock stalls behind it"))
    return findings


def check_wait_loop(cls: ClassModel) -> list[Finding]:
    findings = []
    for method in cls.methods.values():
        for wp in method.waits:
            if wp.in_loop:
                continue
            findings.append(_finding(
                cls, KIND_WAIT_LOOP, method.name, wp.line,
                f"{wp.cond}.wait() is not wrapped in a while-predicate "
                f"loop; spurious wakeups and stolen notifications break "
                f"the invariant"))
    return findings


def check_notify(cls: ClassModel) -> list[Finding]:
    findings = []
    for method in cls.methods.values():
        for np_ in method.notifies:
            canon = cls.canonical(np_.cond)
            missing = all(
                canon not in eff
                for eff in _effective(cls, method.name, np_.held))
            if missing:
                findings.append(_finding(
                    cls, KIND_NOTIFY, method.name, np_.line,
                    f"{np_.cond}.notify() without holding its lock "
                    f"({canon}); raises RuntimeError at runtime"))
    return findings


def check_release(cls: ClassModel) -> list[Finding]:
    findings = []
    for method in cls.methods.values():
        for region in method.manual:
            if region.safe:
                continue
            findings.append(_finding(
                cls, KIND_RELEASE, method.name, region.line,
                f"{region.lock}.acquire() without a try/finally release; "
                f"an exception on this path leaks the lock"))
    return findings


def check_reentry(cls: ClassModel) -> list[Finding]:
    findings = []
    for method in cls.methods.values():
        # per lock: critical-section ordinal -> reads/writes per attr
        reads: dict[str, dict[str, int]] = defaultdict(dict)
        flagged: set[tuple[str, str]] = set()
        for acc in method.accesses:
            for lock, ordinal in acc.sections:
                if acc.kind == WRITE:
                    first_read = reads[lock].get(acc.attr)
                    if (first_read is not None and first_read < ordinal
                            and (lock, acc.attr) not in flagged):
                        flagged.add((lock, acc.attr))
                        findings.append(_finding(
                            cls, KIND_REENTRY, method.name, acc.line,
                            f"attribute '{acc.attr}' was read under {lock} "
                            f"in an earlier critical section and is "
                            f"written here after the lock was dropped and "
                            f"retaken; the check-then-act is not atomic"))
                else:
                    reads[lock].setdefault(acc.attr, ordinal)
    return findings


_CHECKERS = (check_lock_order, check_atomicity, check_blocking,
             check_wait_loop, check_notify, check_release, check_reentry)


def check_class(cls: ClassModel) -> list[Finding]:
    findings: list[Finding] = []
    for checker in _CHECKERS:
        findings.extend(checker(cls))
    return findings


def apply_suppressions(
        findings: list[Finding],
        classes: list[ClassModel],
        suppressions: dict[int, frozenset[str]],
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (active, suppressed) per ``# analyze: allow``.

    A suppression matches when it sits on the finding's line, the line
    above it, or the ``def`` line of the enclosing method (method-scoped
    allow).  ``allow(all)`` matches every kind.
    """
    def_lines: dict[str, int] = {}
    for cls in classes:
        for method in cls.methods.values():
            def_lines[f"{cls.name}.{method.name}"] = method.line

    def allowed(f: Finding) -> bool:
        candidates = [f.line, f.line - 1]
        def_line = def_lines.get(f.kernel)
        if def_line is not None:
            candidates.append(def_line)
        for line in candidates:
            kinds = suppressions.get(line)
            if kinds and (f.kind in kinds or "all" in kinds):
                return True
        return False

    active = [f for f in findings if not allowed(f)]
    suppressed = [f for f in findings if allowed(f)]
    return active, suppressed
