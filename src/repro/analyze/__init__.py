"""Static race/barrier/codegen analysis for the per-thread SIMT kernels.

The paper's fused kernels are correct only under invariants the runtime can
at best discover late (a deadlocked launch) or not at all (a silently
corrupted ``w``).  This package enforces them at *plan time*:

* :mod:`~repro.analyze.extract` lowers each generator kernel into an
  abstract model (shared/global accesses, atomicity, barrier phases, taint);
* :mod:`~repro.analyze.checkers` runs the shared/global race detector and
  the barrier-divergence checker over that model;
* :mod:`~repro.analyze.codegen_lint` validates generated dense-kernel
  source against the Listing 2 register rules;
* :mod:`~repro.analyze.sanitizer` cross-validates every static finding
  class dynamically through ``SimtEngine(sanitize=True)``;
* :mod:`~repro.analyze.host` applies the same architecture to the threaded
  *host* stack (engine/serve/cluster): lock-discipline checkers plus a
  dynamic lock-order witness;
* :mod:`~repro.analyze.check` ties it together for the ``repro check`` CLI.
"""

from .check import (DEFAULT_GRID, analyze_file, check_grid, check_shipped,
                    findings_json, findings_text, parse_grid, run_check)
from .host import (HOST_MODULE_FILES, analyze_host_file, run_host_check)
from .checkers import check_barriers, check_model, check_models, check_races
from .codegen_lint import check_codegen_source, check_specialization
from .extract import AnalysisError, extract_kernel, extract_source, is_kernel
from .model import Access, Finding, Guard, KernelModel, SyncPoint
from .sanitizer import (alg1_launch, alg2_launch, dynamic_kinds,
                        fixture_inputs, sanitized_launch)

__all__ = [
    "DEFAULT_GRID", "analyze_file", "check_grid", "check_shipped",
    "findings_json", "findings_text", "parse_grid", "run_check",
    "HOST_MODULE_FILES", "analyze_host_file", "run_host_check",
    "check_barriers", "check_model", "check_models", "check_races",
    "check_codegen_source", "check_specialization",
    "AnalysisError", "extract_kernel", "extract_source", "is_kernel",
    "Access", "Finding", "Guard", "KernelModel", "SyncPoint",
    "alg1_launch", "alg2_launch", "dynamic_kinds", "fixture_inputs",
    "sanitized_launch",
]
