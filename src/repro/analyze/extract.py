"""AST-driven extraction of per-thread SIMT kernels into kernel models.

A kernel (any generator function whose first parameter is the thread context,
conventionally ``ctx``) is lowered into one or more :class:`KernelModel`
instances — one per control-flow *path* through uniform, barrier-containing
branches (e.g. Algorithm 3's ``VS <= 32`` register-vs-shared reduction split,
where the two sides have different barrier structures and must be analyzed
separately).

The walk performs a simple flow-insensitive taint analysis (see
:mod:`repro.analyze.model` for the lattice) plus *phase numbering*: a counter
incremented at every ``yield BARRIER``, so two accesses share a phase exactly
when no barrier is guaranteed between them.  Loops whose body contains a
barrier are walked twice, which makes loop-carried adjacency visible — the
region after a loop's last barrier and the region before its first barrier
meet across iterations, the classic way a "barrier at the top of the loop"
still leaves a race around the back edge.

Known approximations (sound for the corpus this analyzes, documented here so
nobody mistakes them for guarantees):

* two tid-partitioned accesses are assumed to use the *same* partition, so
  they never conflict — true for the paper's ``range(tid, n, block_size)``
  strided idiom;
* accesses in the two sides of a non-split ``if`` are treated as
  co-executing even when the condition is uniform (conservative);
* ``yield from`` into a helper is treated as one shuffle synchronization,
  not inlined.
"""

from __future__ import annotations

import ast

from .model import (BLOCK, DATA, GLOBAL, READ, SHARED, TID, WRITE, Access,
                    Guard, KernelModel, SyncPoint)

UNIFORM: frozenset[str] = frozenset()
MAX_PATHS = 32

# taints of ``ctx.<attr>`` reads
_CTX_ATTR_TAINT: dict[str, frozenset[str]] = {
    "tid": frozenset({TID}),
    "lane": frozenset({TID}),
    "warp": frozenset({TID}),
    "block_id": frozenset({BLOCK}),
    "global_tid": frozenset({TID, BLOCK}),
    "block_size": UNIFORM,
    "grid_size": UNIFORM,
    "grid_threads": UNIFORM,
}


class AnalysisError(ValueError):
    """The kernel uses a construct the extractor cannot model."""


class _NeedChoice(Exception):
    """Internal: the walk hit an unexplored uniform barrier-branch."""

    def __init__(self, node_id: int):
        self.node_id = node_id


def _contains_barrier(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Yield) and isinstance(sub.value, ast.Name)
                and sub.value.id == "BARRIER"):
            return True
    return False


def _guard_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<condition>"


class _Walker:
    """One linear walk over a kernel body for a fixed path assignment."""

    def __init__(self, fn: ast.FunctionDef, ctx_name: str,
                 arrays: set[str], choices: dict[int, bool]):
        self.fn = fn
        self.ctx = ctx_name
        self.arrays = arrays           # global-array parameter names
        self.choices = choices
        self.env: dict[str, frozenset[str]] = {}
        self.phase = 0
        self.guards: list[Guard] = []
        self.model = KernelModel(name=fn.name)

    # ---------------------------------------------------------------- #
    def run(self) -> KernelModel:
        for p in self.fn.args.args[1:]:
            self.env[p.arg] = UNIFORM
        self._walk_body(self.fn.body)
        self.model.phases = self.phase + 1
        self.model.path = ",".join(
            f"{nid}:{'T' if v else 'F'}"
            for nid, v in sorted(self.choices.items()))
        return self.model

    # -- access recording -------------------------------------------- #
    def _record(self, space: str, array: str, kind: str, atomic: bool,
                index_taint: frozenset[str], line: int) -> None:
        self.model.accesses.append(Access(
            space=space, array=array, kind=kind, atomic=atomic,
            index_taint=index_taint, phase=self.phase, line=line,
            guards=tuple(self.guards)))

    def _record_sync(self, kind: str, line: int) -> None:
        self.model.syncs.append(
            SyncPoint(kind=kind, line=line, guards=tuple(self.guards)))

    # -- expression taint (recording reads as a side effect) ---------- #
    def _is_ctx_attr(self, node: ast.AST, attr: str) -> bool:
        return (isinstance(node, ast.Attribute) and node.attr == attr
                and isinstance(node.value, ast.Name)
                and node.value.id == self.ctx)

    def _subscript_base(self, node: ast.Subscript) -> tuple[str, str] | None:
        """(space, array-name) when the base is analyzable memory."""
        if self._is_ctx_attr(node.value, "shared"):
            return SHARED, "shared"
        if isinstance(node.value, ast.Name) and node.value.id in self.arrays:
            return GLOBAL, node.value.id
        return None

    def taint(self, node: ast.AST | None) -> frozenset[str]:
        if node is None:
            return UNIFORM
        if isinstance(node, ast.Constant):
            return UNIFORM
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNIFORM)
        if isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name)
                    and node.value.id == self.ctx):
                return _CTX_ATTR_TAINT.get(node.attr, UNIFORM)
            return self.taint(node.value)
        if isinstance(node, ast.Subscript):
            base = self._subscript_base(node)
            idx_taint = self.taint(node.slice)
            if base is not None:
                space, array = base
                self._record(space, array, READ, False, idx_taint,
                             node.lineno)
                return idx_taint | {DATA}
            return idx_taint | self.taint(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            # a suspension point used as an expression (``s = yield from
            # warp_allreduce_sum(...)``); the received value comes from
            # other lanes' data
            self._record_sync("shuffle", node.lineno)
            return self.taint(node.value) | {DATA} if node.value is not None \
                else frozenset({DATA})
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comp_taint(node)
        out: frozenset[str] = UNIFORM
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword)):
                val = child.value if isinstance(child, ast.keyword) else child
                out |= self.taint(val)
            elif isinstance(child, ast.comprehension):  # pragma: no cover
                out |= self.taint(child.iter)
        return out

    def _call_taint(self, node: ast.Call) -> frozenset[str]:
        func = node.func
        if self._is_ctx_attr(func, "atomic_add"):
            if len(node.args) < 3:
                raise AnalysisError(
                    f"{self.fn.name}:{node.lineno}: atomic_add needs "
                    "(array, index, value)")
            arr, idx, val = node.args[0], node.args[1], node.args[2]
            if not isinstance(arr, ast.Name):
                raise AnalysisError(
                    f"{self.fn.name}:{node.lineno}: atomic_add target "
                    "must be a named array")
            self.arrays.add(arr.id)
            self._record(GLOBAL, arr.id, WRITE, True, self.taint(idx),
                         node.lineno)
            self.taint(val)
            return UNIFORM
        if self._is_ctx_attr(func, "atomic_add_shared"):
            if len(node.args) < 2:
                raise AnalysisError(
                    f"{self.fn.name}:{node.lineno}: atomic_add_shared "
                    "needs (index, value)")
            idx, val = node.args[0], node.args[1]
            self._record(SHARED, "shared", WRITE, True, self.taint(idx),
                         node.lineno)
            self.taint(val)
            return UNIFORM
        out: frozenset[str] = UNIFORM
        for a in node.args:
            out |= self.taint(a)
        for kw in node.keywords:
            out |= self.taint(kw.value)
        return out

    def _comp_taint(self, node) -> frozenset[str]:
        saved = dict(self.env)
        out: frozenset[str] = UNIFORM
        try:
            for gen in node.generators:
                it = self.taint(gen.iter)
                out |= it
                self._bind(gen.target, it)
                for cond in gen.ifs:
                    out |= self.taint(cond)
            out |= self.taint(node.elt)
        finally:
            self.env = saved
        return out

    # -- binding ------------------------------------------------------ #
    def _bind(self, target: ast.AST, taint: frozenset[str]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)

    # -- statements --------------------------------------------------- #
    def _walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Expr):
            val = stmt.value
            if (isinstance(val, ast.Yield) and isinstance(val.value, ast.Name)
                    and val.value.id == "BARRIER"):
                self._record_sync("barrier", stmt.lineno)
                self.phase += 1
                return
            self.taint(val)
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._walk_assign(stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            value_taint = self.taint(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Subscript):
                base = self._subscript_base(target)
                idx_taint = self.taint(target.slice)
                if base is not None:
                    space, array = base
                    self._record(space, array, READ, False, idx_taint,
                                 stmt.lineno)
                    self._record(space, array, WRITE, False, idx_taint,
                                 stmt.lineno)
                elif isinstance(target.value, ast.Name):
                    name = target.value.id
                    self.env[name] = (self.env.get(name, UNIFORM)
                                      | value_taint | idx_taint)
            elif isinstance(target, ast.Name):
                self.env[target.id] = (self.env.get(target.id, UNIFORM)
                                       | value_taint)
            return
        if isinstance(stmt, ast.If):
            self._walk_if(stmt)
            return
        if isinstance(stmt, (ast.For, ast.While)):
            self._walk_loop(stmt)
            return
        if isinstance(stmt, (ast.Return, ast.Pass, ast.Break, ast.Continue)):
            return
        if isinstance(stmt, ast.Assert):
            self.taint(stmt.test)
            return
        raise AnalysisError(
            f"{self.fn.name}:{stmt.lineno}: unsupported statement "
            f"{type(stmt).__name__} in SIMT kernel")

    def _walk_assign(self, stmt: ast.Assign | ast.AnnAssign) -> None:
        value = stmt.value
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        # pairwise tuple unpacking keeps `start, end = a, b` precise
        if (len(targets) == 1 and isinstance(targets[0], ast.Tuple)
                and isinstance(value, ast.Tuple)
                and len(targets[0].elts) == len(value.elts)):
            for tgt, val in zip(targets[0].elts, value.elts):
                self._assign_one(tgt, self.taint(val), stmt.lineno)
            return
        value_taint = self.taint(value)
        for tgt in targets:
            self._assign_one(tgt, value_taint, stmt.lineno)

    def _assign_one(self, target: ast.AST, value_taint: frozenset[str],
                    line: int) -> None:
        if isinstance(target, ast.Subscript):
            base = self._subscript_base(target)
            idx_taint = self.taint(target.slice)
            if base is not None:
                space, array = base
                self._record(space, array, WRITE, False, idx_taint, line)
            elif isinstance(target.value, ast.Name):
                name = target.value.id
                self.env[name] = (self.env.get(name, UNIFORM)
                                  | value_taint | idx_taint)
            return
        self._bind(target, value_taint)

    def _walk_if(self, stmt: ast.If) -> None:
        cond_taint = self.taint(stmt.test)
        guard = Guard(taint=cond_taint, text=_guard_text(stmt.test),
                      line=stmt.lineno)
        divergent = bool(cond_taint & {TID, DATA})
        if not divergent and _contains_barrier(stmt):
            # a uniform branch with different barrier structures per side:
            # analyze each side as its own path so phase numbering stays
            # exact (Algorithm 3's VS <= 32 split)
            nid = id(stmt)
            if nid not in self.choices:
                raise _NeedChoice(nid)
            chosen = stmt.body if self.choices[nid] else stmt.orelse
            self.guards.append(guard)
            try:
                self._walk_body(chosen)
            finally:
                self.guards.pop()
            return
        self.guards.append(guard)
        try:
            self._walk_body(stmt.body)
            self._walk_body(stmt.orelse)
        finally:
            self.guards.pop()

    def _walk_loop(self, stmt: ast.For | ast.While) -> None:
        if isinstance(stmt, ast.For):
            bound_taint = self.taint(stmt.iter)
            self._bind(stmt.target, bound_taint)
            text = f"for {_guard_text(stmt.target)} in {_guard_text(stmt.iter)}"
        else:
            bound_taint = self.taint(stmt.test)
            text = f"while {_guard_text(stmt.test)}"
        guard = Guard(taint=bound_taint, text=text, line=stmt.lineno)
        # a loop whose body contains a barrier wraps the trailing region
        # onto the leading one across the back edge; walking the body twice
        # makes that adjacency share a phase number
        rounds = 2 if any(_contains_barrier(s) for s in stmt.body) else 1
        self.guards.append(guard)
        try:
            for _ in range(rounds):
                self._walk_body(stmt.body)
        finally:
            self.guards.pop()
        self._walk_body(stmt.orelse)


def _collect_arrays(fn: ast.FunctionDef, ctx_name: str) -> set[str]:
    """Parameter names used as memory: subscripted or atomically targeted."""
    params = {p.arg for p in fn.args.args[1:]}
    arrays: set[str] = set()
    for node in ast.walk(fn):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id in params):
            arrays.add(node.value.id)
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr == "atomic_add"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == ctx_name
                    and node.args and isinstance(node.args[0], ast.Name)):
                arrays.add(node.args[0].id)
    return arrays


def is_kernel(fn: ast.FunctionDef) -> bool:
    """Generator functions taking a thread context first are SIMT kernels."""
    if not fn.args.args:
        return False
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def extract_kernel(fn: ast.FunctionDef) -> list[KernelModel]:
    """Lower one kernel into models, one per uniform barrier-branch path."""
    ctx_name = fn.args.args[0].arg
    arrays = _collect_arrays(fn, ctx_name)
    models: list[KernelModel] = []
    worklist: list[dict[int, bool]] = [{}]
    while worklist:
        choices = worklist.pop()
        walker = _Walker(fn, ctx_name, set(arrays), choices)
        try:
            models.append(walker.run())
        except _NeedChoice as nc:
            worklist.append({**choices, nc.node_id: True})
            worklist.append({**choices, nc.node_id: False})
        if len(models) + len(worklist) > MAX_PATHS:
            raise AnalysisError(
                f"{fn.name}: more than {MAX_PATHS} uniform barrier-branch "
                "paths; refusing to enumerate")
    return models


def extract_source(source: str, filename: str = "<kernel>") \
        -> list[KernelModel]:
    """Extract models for every SIMT kernel defined in ``source``."""
    tree = ast.parse(source, filename=filename)
    models: list[KernelModel] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and is_kernel(node):
            models.extend(extract_kernel(node))
    return models
