"""``repro.serve`` — micro-batching pattern-evaluation serving layer.

Turns the :class:`~repro.core.engine.PatternEngine` session cache into a
long-lived service: bounded admission with load-shedding and deadlines, a
fingerprint-aware micro-batcher that keeps same-matrix requests adjacent so
cached profiles/plans/transposes are reused, a worker pool draining batches
through ``evaluate_many``, and live metrics exportable as JSON or
Prometheus text.  See DESIGN.md §3.3 for the architecture.
"""

from .batcher import POLICIES, form_batches
from .client import ServeClient
from .loadgen import (MODES, build_matrices, format_report, load_workload,
                      materialize_request, materialize_requests, percentile,
                      run_workload, save_workload, synthesize_workload,
                      zipf_weights)
from .metrics import Histogram, ServeMetrics
from .queue import AdmissionQueue
from .request import (STATUS_ERROR, STATUS_OK, STATUS_REJECTED, STATUS_SHED,
                      STATUS_TIMEOUT, STATUSES, ServeFuture, ServeRequest,
                      ServeResponse)
from .server import PatternServer, ServerConfig

__all__ = [
    "POLICIES", "MODES", "STATUSES", "STATUS_OK", "STATUS_SHED",
    "STATUS_TIMEOUT", "STATUS_REJECTED", "STATUS_ERROR",
    "AdmissionQueue", "Histogram", "PatternServer", "ServeClient",
    "ServeFuture", "ServeMetrics", "ServeRequest", "ServeResponse",
    "ServerConfig", "build_matrices", "form_batches", "format_report",
    "load_workload", "materialize_request", "materialize_requests",
    "percentile", "run_workload", "save_workload", "synthesize_workload",
    "zipf_weights",
]
