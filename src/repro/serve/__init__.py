"""``repro.serve`` — micro-batching pattern-evaluation serving layer.

Turns the :class:`~repro.core.engine.PatternEngine` session cache into a
long-lived service: bounded admission with load-shedding and deadlines, a
fingerprint-aware micro-batcher that keeps same-matrix requests adjacent so
cached profiles/plans/transposes are reused, a worker pool draining batches
through ``evaluate_many``, and live metrics exportable as JSON or
Prometheus text.  The ``edf`` policy adds SLO-aware scheduling on top:
earliest-deadline-first dispatch with cost-aware batch sizing, weighted-
fair priority tiers with deterministic shed ordering, and a hysteretic
autoscaler driven by the queue-wait/service ratio.  See DESIGN.md §3.3
and §3.9 for the architecture.
"""

from .autoscale import AutoscaleConfig, Autoscaler, parse_autoscale
from .batcher import POLICIES, form_batches
from .client import ServeClient
from .loadgen import (MODES, build_matrices, format_report, load_workload,
                      materialize_request, materialize_requests,
                      parse_tier_mix, percentile, run_workload,
                      save_workload, synthesize_workload, tiers_from_trace,
                      zipf_weights)
from .metrics import Histogram, ServeMetrics
from .queue import AdmissionQueue
from .request import (STATUS_ERROR, STATUS_OK, STATUS_REJECTED, STATUS_SHED,
                      STATUS_TIMEOUT, STATUSES, ServeFuture, ServeRequest,
                      ServeResponse)
from .sched import (DEFAULT_TIER, CostModel, TierSpec, default_tiers,
                    parse_tiers, pick_next_batch, plan_batches, resolve_tier,
                    shed_order, shed_sort_key)
from .server import PatternServer, ServerConfig

__all__ = [
    "POLICIES", "MODES", "STATUSES", "STATUS_OK", "STATUS_SHED",
    "STATUS_TIMEOUT", "STATUS_REJECTED", "STATUS_ERROR", "DEFAULT_TIER",
    "AdmissionQueue", "AutoscaleConfig", "Autoscaler", "CostModel",
    "Histogram", "PatternServer", "ServeClient", "ServeFuture",
    "ServeMetrics", "ServeRequest", "ServeResponse", "ServerConfig",
    "TierSpec", "build_matrices", "default_tiers", "form_batches",
    "format_report", "load_workload", "materialize_request",
    "materialize_requests", "parse_autoscale", "parse_tier_mix",
    "parse_tiers", "percentile", "pick_next_batch", "plan_batches",
    "resolve_tier", "run_workload", "save_workload", "shed_order",
    "shed_sort_key", "synthesize_workload", "tiers_from_trace",
    "zipf_weights",
]
