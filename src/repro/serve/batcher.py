"""Micro-batch formation: fingerprint-aware grouping vs naive FIFO.

Pure functions over drained tickets, so the policies are unit-testable
without threads.  The fingerprint policy is the serving-side counterpart of
the engine's content-addressed caches: requests over the same matrix (and
strategy) are made *adjacent* in dispatch order, so each batch hits one
cached profile, SpMV plan, and csr2csc transpose instead of thrashing the
artifact LRU the way an interleaved FIFO stream does.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from .request import _Ticket
from .sched import CostModel, TierSpec, plan_batches

POLICIES = ("fifo", "fingerprint", "edf")


def form_batches(tickets: Sequence[_Ticket], policy: str,
                 max_batch: int, *,
                 tiers: dict[str, TierSpec] | None = None,
                 cost_model: CostModel | None = None,
                 now: float | None = None) -> list[list[_Ticket]]:
    """Slice drained tickets into dispatch batches of at most ``max_batch``.

    * ``fifo`` — arrival order, cut every ``max_batch`` tickets; batches
      freely mix fingerprints (the baseline the benchmark compares against).
    * ``fingerprint`` — group by ``ticket.key`` first (groups ordered by
      their earliest arrival, arrival order preserved inside each group),
      then cut each group into ``max_batch`` chunks.
    * ``edf`` — fingerprint groups ordered earliest-deadline-first inside
      weighted-fair tier rounds, batch size capped by predicted cost
      (:func:`repro.serve.sched.plan_batches`; the live server picks one
      batch at a time instead so late arrivals join the decision).

    Every policy dispatches every ticket exactly once; only adjacency
    changes, so results are bit-identical across policies.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown batching policy {policy!r}; "
                         f"expected one of {POLICIES}")
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if not tickets:
        return []
    if policy == "edf":
        return plan_batches(tickets, tiers=tiers, cost_model=cost_model,
                            max_batch=max_batch, now=now)
    if policy == "fifo":
        ordered: list[Sequence[_Ticket]] = [tickets]
    else:
        groups: OrderedDict[tuple, list[_Ticket]] = OrderedDict()
        for t in tickets:
            groups.setdefault(t.key, []).append(t)
        ordered = list(groups.values())
    batches: list[list[_Ticket]] = []
    for group in ordered:
        for i in range(0, len(group), max_batch):
            batches.append(list(group[i:i + max_batch]))
    return batches
