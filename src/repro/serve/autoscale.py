"""Worker-pool autoscaling from the observed queue-wait/service ratio.

The decision core is deliberately pure: :class:`Autoscaler` consumes one
interval's aggregate signals at a time (mean queue wait, mean service
time, completions, queue depth) and returns a new worker target — or
``None`` — so hysteresis is unit-testable against synthetic load shapes
without threads or clocks.

The signal is the ratio *mean queue wait / mean service time* over the
last interval.  Waiting much longer than serving means the pool is the
bottleneck (scale up); near-zero wait with an empty queue means workers
are idle (scale down).  Two guards prevent flapping on noisy or
square-wave load:

* **consecutive breaches** — a threshold must hold for ``breach_count``
  intervals in a row before acting, so one slow batch or one idle tick
  does nothing;
* **cooldown** — after a resize, no further action for ``cooldown_s``,
  so the effect of the last step is observed before the next.

The server applies the target by widening/narrowing the in-flight slot
gate (the thread pool itself is sized at ``max_workers`` once); every
change is exported as a trace span and a Prometheus counter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscaleConfig:
    """Tunables for one :class:`Autoscaler`."""

    min_workers: int = 1
    max_workers: int = 8
    high_ratio: float = 0.5      # wait/service above this => backlog
    low_ratio: float = 0.1       # wait/service below this (queue empty)
    breach_count: int = 3        # consecutive intervals before acting
    cooldown_s: float = 1.0      # quiet period after each resize
    interval_s: float = 0.25     # how often the server samples the ratio
    step: int = 1                # workers added/removed per action

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.low_ratio < 0 or self.high_ratio <= self.low_ratio:
            raise ValueError("need 0 <= low_ratio < high_ratio")
        if self.breach_count < 1:
            raise ValueError("breach_count must be >= 1")
        if self.cooldown_s < 0 or self.interval_s <= 0:
            raise ValueError("cooldown_s >= 0 and interval_s > 0 required")
        if self.step < 1:
            raise ValueError("step must be >= 1")


class Autoscaler:
    """Hysteretic worker-target controller; pure decision logic."""

    def __init__(self, config: AutoscaleConfig | None = None,
                 initial: int | None = None):
        self.config = config or AutoscaleConfig()
        lo, hi = self.config.min_workers, self.config.max_workers
        self.target = min(max(initial if initial is not None else lo, lo),
                          hi)
        self._high_streak = 0
        self._low_streak = 0
        self._last_change: float | None = None

    def ratio(self, wait_ms: float, service_ms: float) -> float:
        """The pressure signal for one interval's mean wait/service."""
        if service_ms <= 0:
            return 0.0
        return wait_ms / service_ms

    def observe(self, *, wait_ms: float, service_ms: float,
                completed: int, queue_depth: int,
                now: float) -> int | None:
        """Feed one interval; returns the new target when it changes.

        ``wait_ms``/``service_ms`` are the interval's *means*;
        ``completed`` is how many requests finished in it.  An interval
        that completes nothing while work is queued reads as maximal
        pressure (workers wedged or saturated); completing nothing with
        an empty queue reads as idle.
        """
        cfg = self.config
        if completed > 0:
            pressure = self.ratio(wait_ms, service_ms)
            high = pressure >= cfg.high_ratio
            low = pressure <= cfg.low_ratio and queue_depth == 0
        else:
            high = queue_depth > 0
            low = queue_depth == 0
        if high:
            self._high_streak += 1
            self._low_streak = 0
        elif low:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        if self._last_change is not None \
                and now - self._last_change < cfg.cooldown_s:
            return None
        if self._high_streak >= cfg.breach_count \
                and self.target < cfg.max_workers:
            self.target = min(self.target + cfg.step, cfg.max_workers)
            self._reset(now)
            return self.target
        if self._low_streak >= cfg.breach_count \
                and self.target > cfg.min_workers:
            self.target = max(self.target - cfg.step, cfg.min_workers)
            self._reset(now)
            return self.target
        return None

    def _reset(self, now: float) -> None:
        self._high_streak = 0
        self._low_streak = 0
        self._last_change = now


def parse_autoscale(spec: str) -> AutoscaleConfig:
    """CLI helper: ``"min:max"`` (e.g. ``"1:8"``) with stock hysteresis."""
    fields = spec.split(":")
    if len(fields) != 2:
        raise ValueError(f"bad autoscale spec {spec!r}; expected MIN:MAX")
    return AutoscaleConfig(min_workers=int(fields[0]),
                           max_workers=int(fields[1]))
