"""Request/response types for the pattern-evaluation server.

A :class:`ServeRequest` is the user-facing description of one Eq.-1
evaluation (matrix + vectors + scalars + strategy) plus serving policy
knobs (a relative deadline).  Submitting one yields a :class:`ServeFuture`
that always resolves to a :class:`ServeResponse` — rejections (queue shed,
deadline timeout, shutdown) are *responses with a status*, never raised
exceptions, so callers can distinguish load-shedding from failure without
try/except plumbing.

Internally the server wraps each admitted request in a ``_Ticket`` carrying
the content fingerprint (the micro-batcher's grouping key), the absolute
deadline, and the enqueue timestamp used for wait-time accounting.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.engine import PatternRequest, fingerprint_matrix
from ..core.pattern import GenericPattern
from ..kernels.base import KernelResult
from ..sparse.csr import CsrMatrix

#: Terminal statuses a response can carry.
STATUS_OK = "ok"                 # evaluated; ``result`` is set
STATUS_SHED = "shed"             # admission queue full (load-shedding)
STATUS_TIMEOUT = "timeout"       # deadline expired before evaluation
STATUS_REJECTED = "rejected"     # server shutting down / not accepting
STATUS_ERROR = "error"           # evaluation raised; ``reason`` has details
STATUSES = (STATUS_OK, STATUS_SHED, STATUS_TIMEOUT, STATUS_REJECTED,
            STATUS_ERROR)


@dataclass
class ServeRequest:
    """One pattern evaluation to run through the server."""

    X: CsrMatrix | np.ndarray
    y: np.ndarray
    v: np.ndarray | None = None
    z: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0
    inner: bool = True
    strategy: str = "auto"
    deadline_ms: float | None = None   # relative to submit; None = no deadline
    tenant: str = ""                   # opaque tenant label (observability)
    tier: str = ""                     # service class; "" = server default
    slo_ms: float | None = None        # latency SLO (observed, not enforced)

    def to_pattern_request(self) -> PatternRequest:
        return PatternRequest(self.X, self.y, v=self.v, z=self.z,
                              alpha=self.alpha, beta=self.beta,
                              inner=self.inner, strategy=self.strategy)

    def validate(self) -> GenericPattern:
        """Eagerly shape-check (raises ``ValueError`` in the caller's
        thread, not inside a worker where it would poison a whole batch)."""
        return GenericPattern(self.X, self.y, v=self.v, z=self.z,
                              alpha=self.alpha, beta=self.beta,
                              inner=self.inner)

    def group_key(self) -> tuple[str, str]:
        """Micro-batching key: requests sharing it reuse one cached
        profile/plan/transpose when evaluated back to back."""
        return (fingerprint_matrix(self.X), self.strategy)


@dataclass
class ServeResponse:
    """Terminal outcome of one submitted request."""

    id: int
    status: str
    result: KernelResult | None = None
    reason: str = ""
    fingerprint: str = ""
    wait_ms: float = 0.0          # enqueue -> batch dispatch
    service_ms: float = 0.0       # host wall time inside the engine
    latency_ms: float = 0.0       # enqueue -> resolution (end-to-end)
    batch_size: int = 0           # live requests in the dispatched batch
    cached: bool = False          # engine served this request fully warm
    tier: str = ""                # service class the server resolved

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class ServeFuture:
    """Write-once handle resolved by the server with a ServeResponse."""

    __slots__ = ("_event", "_response", "_callbacks", "_cb_lock",
                 "resolved_at")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: ServeResponse | None = None
        self._callbacks: list = []
        self._cb_lock = threading.Lock()
        #: ``time.monotonic()`` of the winning :meth:`resolve` call —
        #: lets callers measure completion time against their own clock
        #: (e.g. a backlog-replay benchmark timing from floodgate-open)
        self.resolved_at: float | None = None

    def resolve(self, response: ServeResponse) -> bool:
        """First resolution wins; later ones are ignored (returns False)."""
        with self._cb_lock:
            if self._event.is_set():
                return False
            self._response = response
            self.resolved_at = time.monotonic()
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(response)
        return True

    def add_done_callback(self, fn) -> None:
        """Run ``fn(response)`` once resolved (immediately if already done).

        Callbacks fire on the resolving thread (a server worker) — or the
        caller's thread when the future is already resolved — so they must
        be cheap and non-blocking (the cluster worker host uses one to hand
        finished responses to its socket-writer queue).
        """
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
            response = self._response
        assert response is not None
        fn(response)

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServeResponse:
        if not self._event.wait(timeout):
            raise TimeoutError("request was not resolved within the timeout")
        # Event.wait() is the publication barrier: resolve() stores the
        # response before set(), so the bare read is ordered after it
        # analyze: allow(atomicity)
        assert self._response is not None
        return self._response


@dataclass
class _Ticket:
    """Internal per-request record flowing queue -> batcher -> worker."""

    id: int
    request: PatternRequest
    key: tuple[str, str]            # (matrix fingerprint, strategy)
    enqueued_at: float              # time.monotonic()
    deadline_at: float | None       # absolute monotonic deadline, or None
    future: ServeFuture = field(default_factory=ServeFuture)
    tier: str = ""                  # resolved service class name
    slo_ms: float | None = None     # resolved latency SLO (observability)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_at is None:
            return False
        return (now if now is not None else time.monotonic()) \
            > self.deadline_at
