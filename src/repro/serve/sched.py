"""SLO-aware scheduling: tiers, shed ordering, cost model, EDF batching.

This module holds the pure scheduling core behind the server's ``edf``
policy, written as plain functions over drained tickets so every decision
is unit-testable without threads:

* **tiers** — a :class:`TierSpec` names a service class (``interactive``
  vs ``batch`` tenants), its weighted-fair share, its shed priority
  (``rank``; higher rank sheds first), and an optional SLO threshold.
* **shed ordering** — under overload, victims are picked lowest tier
  first, then latest deadline first, then latest arrival first.  The
  order is a pure function of the tickets (:func:`shed_order`), so the
  contract is deterministic and pinned by tests.
* **cost model** — :class:`CostModel` predicts per-request service time
  per fingerprint group from an EWMA of observed batch results, seeded
  from the span-derived phase aggregates (``engine.evaluate``) that the
  metrics endpoint already exports.  A cold server predicts ``None`` and
  the batcher falls back to size-only caps.
* **EDF batch picking** — :func:`pick_next_batch` selects the next
  micro-batch: the tier with the least weighted virtual time goes first
  (weighted fair sharing), inside the tier the fingerprint group with the
  earliest deadline goes first (EDF, preserving batch affinity), and the
  batch is cut short when its *predicted* service time would blow the
  earliest deadline still waiting outside it (cost-aware sizing).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .request import _Ticket

#: Tier assigned to requests that do not name one.
DEFAULT_TIER = "interactive"

#: Phase-aggregate key used to seed the cost model on a traced server.
COST_PHASE = "engine.evaluate"


@dataclass(frozen=True)
class TierSpec:
    """One service class: fair-share weight, shed rank, optional SLO."""

    name: str
    weight: float = 1.0          # weighted-fair share (> 0)
    rank: int = 0                # shed priority: higher rank sheds first
    slo_ms: float | None = None  # default latency SLO for the tier

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tier {self.name!r}: weight must be > 0")
        if self.rank < 0:
            raise ValueError(f"tier {self.name!r}: rank must be >= 0")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"tier {self.name!r}: slo_ms must be > 0")


def default_tiers() -> dict[str, TierSpec]:
    """The stock two-tier split: interactive tenants outweigh batch 3:1."""
    return {
        "interactive": TierSpec("interactive", weight=3.0, rank=0),
        "batch": TierSpec("batch", weight=1.0, rank=1),
    }


def parse_tiers(spec: str) -> dict[str, TierSpec]:
    """Parse a CLI tier spec: ``name:weight[:slo_ms]`` comma-separated.

    Position is priority: the first tier listed gets rank 0 (last to
    shed), the next rank 1, and so on.  ``"interactive:3,batch:1"`` is
    the stock configuration.
    """
    tiers: dict[str, TierSpec] = {}
    for rank, part in enumerate(p for p in spec.split(",") if p.strip()):
        fields = part.strip().split(":")
        if not 1 <= len(fields) <= 3 or not fields[0]:
            raise ValueError(
                f"bad tier spec {part!r}; expected name:weight[:slo_ms]")
        name = fields[0]
        if name in tiers:
            raise ValueError(f"duplicate tier {name!r} in spec")
        weight = float(fields[1]) if len(fields) > 1 and fields[1] else 1.0
        slo = float(fields[2]) if len(fields) > 2 and fields[2] else None
        tiers[name] = TierSpec(name, weight=weight, rank=rank, slo_ms=slo)
    if not tiers:
        raise ValueError("tier spec names no tiers")
    return tiers


def resolve_tier(name: str, tiers: Mapping[str, TierSpec]) -> TierSpec:
    """Look up a tier; unknown names become a synthetic lowest-priority
    tier (weight 1, rank below every configured tier) so requests naming
    a tier the server was not configured with degrade predictably instead
    of raising inside the scheduler."""
    spec = tiers.get(name or DEFAULT_TIER)
    if spec is not None:
        return spec
    worst = max((t.rank for t in tiers.values()), default=-1)
    return TierSpec(name or DEFAULT_TIER, weight=1.0, rank=worst + 1)


# ------------------------------------------------------------- shed ordering
def shed_sort_key(ticket: _Ticket,
                  tiers: Mapping[str, TierSpec]) -> tuple:
    """Sort key whose *maximum* is the next shed victim.

    The contract (pinned by tests, relied on by the preempting offer):
    lowest tier first (highest rank), then latest deadline first
    (deadline-less requests count as latest), then latest arrival first.
    """
    deadline = ticket.deadline_at if ticket.deadline_at is not None \
        else math.inf
    return (resolve_tier(ticket.tier, tiers).rank, deadline,
            ticket.enqueued_at, ticket.id)


def shed_order(tickets: Sequence[_Ticket],
               tiers: Mapping[str, TierSpec]) -> list[_Ticket]:
    """Tickets in deterministic shed order: first element sheds first."""
    return sorted(tickets, key=lambda t: shed_sort_key(t, tiers),
                  reverse=True)


# ----------------------------------------------------------------- cost model
class CostModel:
    """EWMA predictor of per-request service time per fingerprint group.

    Three fallback levels, warmest first: a per-``(fingerprint, strategy)``
    EWMA of observed service times (bounded key count, LRU-evicted), a
    global EWMA across all observations, and a mean derived from the
    ``engine.evaluate`` span phase aggregate when a tracer is installed.
    A fully cold model predicts ``None`` — the batcher then caps batches
    by size only, which is the pre-SLO behavior.
    """

    def __init__(self, alpha: float = 0.25, max_keys: int = 512):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if max_keys < 1:
            raise ValueError("max_keys must be >= 1")
        self.alpha = alpha
        self.max_keys = max_keys
        self._lock = threading.Lock()
        self._per_key: OrderedDict[tuple, float] = OrderedDict()
        self._global: float | None = None
        self._phase: float | None = None
        self._observations = 0

    def observe(self, key: tuple, service_ms: float) -> None:
        """Fold one observed per-request service time into the model."""
        ms = float(service_ms)
        if ms < 0:
            return
        with self._lock:
            self._observations += 1
            prev = self._per_key.pop(key, None)
            self._per_key[key] = ms if prev is None \
                else prev + self.alpha * (ms - prev)
            while len(self._per_key) > self.max_keys:
                self._per_key.popitem(last=False)
            self._global = ms if self._global is None \
                else self._global + self.alpha * (ms - self._global)

    def observe_phases(self, phases: Mapping[str, Mapping] | None) -> None:
        """Seed the global fallback from span phase aggregates
        (:meth:`repro.trace.Tracer.phase_totals` shape)."""
        if not phases:
            return
        tot = phases.get(COST_PHASE)
        if not tot or not tot.get("count"):
            return
        with self._lock:
            self._phase = float(tot["total_ms"]) / float(tot["count"])

    def predict(self, key: tuple) -> float | None:
        """Predicted per-request service ms for ``key``; None when cold."""
        with self._lock:
            est = self._per_key.get(key)
            if est is None:
                est = self._global
            if est is None:
                est = self._phase
            return est

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "global_ms": self._global,
                "keys": len(self._per_key),
                "observations": self._observations,
                "phase_ms": self._phase,
            }


# ------------------------------------------------------------- batch picking
def _edf_key(t: _Ticket) -> tuple:
    deadline = t.deadline_at if t.deadline_at is not None else math.inf
    return (deadline, t.enqueued_at, t.id)


def pick_next_batch(backlog: list[_Ticket], *,
                    tiers: Mapping[str, TierSpec],
                    fair_vt: dict[str, float],
                    cost_model: CostModel | None = None,
                    max_batch: int = 16,
                    now: float | None = None) -> list[_Ticket] | None:
    """Remove and return the next micro-batch from ``backlog``.

    Mutates ``backlog`` (picked tickets are removed) and ``fair_vt`` (the
    chosen tier is charged its batch's predicted cost over its weight —
    classic virtual-time weighted fair queueing, so a 3:1 interactive:
    batch weighting dispatches roughly three interactive batches worth of
    work per batch-tier batch under sustained overload without ever
    starving either side).  Returns ``None`` when the backlog is empty.

    Selection, in order:

    1. *Tier*: the active tier with the least virtual time (ties broken
       by rank then name).  Idle tiers' virtual times are clamped up to
       the active minimum so a long-idle tier cannot bank unbounded
       credit and then monopolize the workers.
    2. *Group* (EDF): among the tier's fingerprint groups, the one whose
       most-urgent ticket has the earliest deadline (deadline-less last,
       then earliest arrival) — batch affinity is preserved because the
       whole batch comes from one group.
    3. *Size* (cost-aware): the batch grows up to ``max_batch`` while the
       predicted service time ``k * cost`` still fits before the earliest
       live deadline among tickets left behind; with a cold model the cap
       is size-only.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if not backlog:
        return None
    if now is None:
        now = time.monotonic()

    active = sorted({t.tier or DEFAULT_TIER for t in backlog})
    # virtual-time entries persist only while a tier stays backlogged: an
    # idle tier's entry is dropped here, and when it returns it re-enters
    # at the floor of the still-active tiers (below), so a long-idle tier
    # cannot bank unbounded credit and then monopolize the workers
    for name in [n for n in fair_vt if n not in active]:
        del fair_vt[name]
    floor = min((fair_vt[n] for n in active if n in fair_vt), default=0.0)
    for name in active:
        fair_vt[name] = max(fair_vt.get(name, floor), floor)
    specs = {name: resolve_tier(name, tiers) for name in active}
    chosen_tier = min(active, key=lambda n: (fair_vt[n], specs[n].rank, n))

    groups: dict[tuple, list[_Ticket]] = {}
    for t in backlog:
        if (t.tier or DEFAULT_TIER) == chosen_tier:
            groups.setdefault(t.key, []).append(t)
    for members in groups.values():
        members.sort(key=_edf_key)
    chosen_key = min(groups, key=lambda k: _edf_key(groups[k][0]))
    group = groups[chosen_key]

    cost = cost_model.predict(chosen_key) if cost_model is not None else None
    take = min(max_batch, len(group))
    if cost is not None and cost > 0 and take > 1:
        in_batch = set()
        size = 1
        in_batch.add(id(group[0]))
        while size < take:
            in_batch.add(id(group[size]))
            # earliest still-live deadline left waiting if we grow to
            # size+1; deadlines already blown can't be saved by a
            # smaller batch, so they don't cap it
            guard = min((t.deadline_at for t in backlog
                         if id(t) not in in_batch
                         and t.deadline_at is not None
                         and t.deadline_at > now), default=None)
            if guard is not None \
                    and now + (size + 1) * cost / 1e3 > guard:
                in_batch.discard(id(group[size]))
                break
            size += 1
        take = size

    batch = group[:take]
    picked = {id(t) for t in batch}
    backlog[:] = [t for t in backlog if id(t) not in picked]
    charge = cost * take if cost is not None and cost > 0 else float(take)
    fair_vt[chosen_tier] = fair_vt[chosen_tier] \
        + charge / specs[chosen_tier].weight
    return batch


def plan_batches(tickets: Sequence[_Ticket], *,
                 tiers: Mapping[str, TierSpec] | None = None,
                 cost_model: CostModel | None = None,
                 max_batch: int = 16,
                 now: float | None = None,
                 fair_vt: dict[str, float] | None = None
                 ) -> list[list[_Ticket]]:
    """Plan a full dispatch order by repeated :func:`pick_next_batch`.

    Pure convenience over the incremental picker (which the server calls
    one batch at a time so late arrivals join the decision): every ticket
    appears in exactly one batch, so outputs stay bit-identical to the
    fifo/fingerprint policies — only adjacency and order change.
    """
    if tiers is None:
        tiers = default_tiers()
    if fair_vt is None:
        fair_vt = {}
    if now is None:
        now = time.monotonic()
    backlog = list(tickets)
    batches: list[list[_Ticket]] = []
    while backlog:
        batch = pick_next_batch(backlog, tiers=tiers, fair_vt=fair_vt,
                                cost_model=cost_model, max_batch=max_batch,
                                now=now)
        assert batch  # backlog was non-empty
        batches.append(batch)
    return batches


#: Type of the victim-ranking callable handed to the preempting offer.
ShedKey = Callable[[_Ticket], tuple]
