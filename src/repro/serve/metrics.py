"""Live serving metrics: counters, histograms, JSON and Prometheus export.

Everything is streaming and bounded: histograms keep fixed log-spaced
buckets plus count/sum/min/max (no unbounded per-request samples), so a
long-lived server's metrics footprint is constant.  ``ServeMetrics`` is the
single lock-protected sink the server records into; ``snapshot()`` folds in
the queue/in-flight gauges and the engine's own cache statistics so one
call yields the full serving picture, exportable as JSON or as the
Prometheus text exposition format.
"""

from __future__ import annotations

import json
import threading

#: Default latency buckets (milliseconds), log-spaced 50us .. 10s.
DEFAULT_BUCKETS_MS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                      50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0)

#: Default micro-batch size buckets.
BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


class Histogram:
    """Fixed-bucket streaming histogram (Prometheus-style, cumulative le)."""

    def __init__(self, buckets=DEFAULT_BUCKETS_MS):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)   # last = +Inf overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile estimate (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        lo = 0.0
        for i, bound in enumerate(self.buckets):
            c = self.counts[i]
            if seen + c >= rank and c > 0:
                frac = (rank - seen) / c
                return min(lo + frac * (bound - lo), self.max)
            seen += c
            lo = bound
        return self.max        # landed in the +Inf overflow bucket

    def to_dict(self) -> dict:
        # sorted key order, like every other metrics exporter: merged and
        # diffed across shards, so ordering is part of the contract
        # (bucket keys sort by bound -- they are data, not schema)
        return {
            "buckets": {str(b): c
                        for b, c in zip(self.buckets, self.counts)},
            "count": self.count,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "overflow": self.counts[-1],
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "sum": self.total,
        }


class ServeMetrics:
    """Lock-protected metrics sink for one :class:`PatternServer`."""

    COUNTERS = ("submitted", "admitted", "completed", "shed", "timeout",
                "rejected", "errors", "batches", "preempted",
                "scale_up", "scale_down")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = dict.fromkeys(self.COUNTERS, 0)
        self._wait_ms = Histogram()
        self._service_ms = Histogram()
        self._latency_ms = Histogram()
        self._batch_size = Histogram(BATCH_SIZE_BUCKETS)
        self._tiers: dict[str, dict] = {}

    # -------------------------------------------------------------- recording
    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def observe_wait(self, ms: float) -> None:
        with self._lock:
            self._wait_ms.observe(ms)

    def observe_batch(self, size: int, service_ms_per_request) -> None:
        """Record one dispatched batch and its per-request service times."""
        with self._lock:
            self._counters["batches"] += 1
            self._batch_size.observe(size)
            for ms in service_ms_per_request:
                self._service_ms.observe(ms)

    def observe_latency(self, ms: float) -> None:
        with self._lock:
            self._latency_ms.observe(ms)

    def observe_tier(self, tier: str, status: str,
                     latency_ms: float | None = None,
                     slo_ms: float | None = None) -> None:
        """Record one terminal outcome against its service tier.

        SLO attainment counts every SLO-carrying request: completing
        within ``slo_ms`` attains; completing late — or not completing
        at all (shed/timeout/rejected/error) — misses.  Requests without
        an SLO only feed the per-tier status counts and latency
        histogram.
        """
        if not tier:
            return
        with self._lock:
            rec = self._tiers.get(tier)
            if rec is None:
                rec = self._tiers[tier] = {
                    "counts": {}, "latency": Histogram(),
                    "slo_ok": 0, "slo_miss": 0,
                }
            rec["counts"][status] = rec["counts"].get(status, 0) + 1
            if latency_ms is not None:
                rec["latency"].observe(latency_ms)
            if slo_ms is not None:
                if status == "ok" and latency_ms is not None \
                        and latency_ms <= slo_ms:
                    rec["slo_ok"] += 1
                else:
                    rec["slo_miss"] += 1

    def flow_totals(self) -> dict:
        """Monotonic wait/service totals for interval deltas (autoscaler)."""
        with self._lock:
            return {
                "completed": self._counters["completed"],
                "service_count": self._service_ms.count,
                "service_ms_sum": self._service_ms.total,
                "wait_count": self._wait_ms.count,
                "wait_ms_sum": self._wait_ms.total,
            }

    # -------------------------------------------------------------- exporting
    @staticmethod
    def _tier_dict(rec: dict) -> dict:
        judged = rec["slo_ok"] + rec["slo_miss"]
        return {
            "counts": {k: rec["counts"][k] for k in sorted(rec["counts"])},
            "latency_ms": rec["latency"].to_dict(),
            "slo_attainment": (rec["slo_ok"] / judged) if judged else None,
            "slo_miss": rec["slo_miss"],
            "slo_ok": rec["slo_ok"],
        }

    def snapshot(self, queue_depth: int = 0, in_flight: int = 0,
                 engine_stats=None, phases=None,
                 workers: int | None = None) -> dict:
        """One consistent dict of counters, gauges, histograms, hit-rates.

        ``phases``, when given, is the span-derived per-phase aggregate from
        an installed :class:`repro.trace.Tracer` (``phase_totals()``), so a
        traced server exports queue-wait/profile-build/kernel-execute time
        next to its endpoint histograms.
        """
        with self._lock:
            # sorted key order at every level: shard-level snapshots are
            # merged counter-by-counter by the cluster router, and the
            # merge (and its tests) only stay deterministic when every
            # exporter agrees on ordering
            snap = {
                "counters": {k: self._counters[k]
                             for k in sorted(self._counters)},
                "gauges": {"in_flight": in_flight,
                           "queue_depth": queue_depth},
                "histograms": {
                    "batch_size": self._batch_size.to_dict(),
                    "latency_ms": self._latency_ms.to_dict(),
                    "service_ms": self._service_ms.to_dict(),
                    "wait_ms": self._wait_ms.to_dict(),
                },
                "tiers": {name: self._tier_dict(self._tiers[name])
                          for name in sorted(self._tiers)},
            }
        if workers is not None:
            snap["gauges"]["workers_target"] = workers
        if phases is not None:
            snap["phases"] = {k: phases[k] for k in sorted(phases)}
        if engine_stats is not None:
            snap["engine"] = engine_stats.to_dict()
        return {k: snap[k] for k in sorted(snap)}

    def to_json(self, queue_depth: int = 0, in_flight: int = 0,
                engine_stats=None, indent: int | None = 2,
                phases=None, workers: int | None = None) -> str:
        return json.dumps(self.snapshot(queue_depth, in_flight, engine_stats,
                                        phases=phases, workers=workers),
                          indent=indent)

    def to_prometheus(self, queue_depth: int = 0, in_flight: int = 0,
                      engine_stats=None, phases=None,
                      workers: int | None = None) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        snap = self.snapshot(queue_depth, in_flight, engine_stats,
                             phases=phases, workers=workers)
        lines: list[str] = []

        def counter(name, help_, value, labels=""):
            lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{labels} {value}")

        def gauge(name, help_, value):
            lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")

        lines.append("# HELP repro_serve_requests_total requests by "
                     "terminal status")
        lines.append("# TYPE repro_serve_requests_total counter")
        for status in ("completed", "shed", "timeout", "rejected", "errors"):
            lines.append(f'repro_serve_requests_total'
                         f'{{status="{status}"}} '
                         f'{snap["counters"][status]}')
        counter("repro_serve_submitted_total",
                "requests offered to the admission queue",
                snap["counters"]["submitted"])
        counter("repro_serve_batches_total", "micro-batches dispatched",
                snap["counters"]["batches"])
        counter("repro_serve_preempted_total",
                "queued requests evicted by higher-priority arrivals",
                snap["counters"]["preempted"])
        lines.append("# HELP repro_serve_scale_events_total autoscaler "
                     "worker-target changes by direction")
        lines.append("# TYPE repro_serve_scale_events_total counter")
        for direction in ("down", "up"):
            lines.append(f'repro_serve_scale_events_total'
                         f'{{direction="{direction}"}} '
                         f'{snap["counters"]["scale_" + direction]}')
        gauge("repro_serve_queue_depth", "requests waiting for dispatch",
              snap["gauges"]["queue_depth"])
        gauge("repro_serve_in_flight", "batches currently evaluating",
              snap["gauges"]["in_flight"])
        if "workers_target" in snap["gauges"]:
            gauge("repro_serve_workers_target",
                  "current autoscaled worker-slot target",
                  snap["gauges"]["workers_target"])
        for hname, hist in snap["histograms"].items():
            metric = f"repro_serve_{hname}"
            lines.append(f"# HELP {metric} serving histogram ({hname})")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, c in hist["buckets"].items():
                cumulative += c
                lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
            cumulative += hist["overflow"]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {hist['sum']}")
            lines.append(f"{metric}_count {hist['count']}")
        if snap["tiers"]:
            lines.append("# HELP repro_serve_tier_requests_total terminal "
                         "outcomes by tier and status")
            lines.append("# TYPE repro_serve_tier_requests_total counter")
            for tname, tier in snap["tiers"].items():
                for status, n in tier["counts"].items():
                    lines.append(
                        f'repro_serve_tier_requests_total'
                        f'{{tier="{tname}",status="{status}"}} {n}')
            lines.append("# HELP repro_serve_tier_latency_ms per-tier "
                         "end-to-end latency")
            lines.append("# TYPE repro_serve_tier_latency_ms histogram")
            for tname, tier in snap["tiers"].items():
                hist = tier["latency_ms"]
                cumulative = 0
                for bound, c in hist["buckets"].items():
                    cumulative += c
                    lines.append(
                        f'repro_serve_tier_latency_ms_bucket'
                        f'{{tier="{tname}",le="{bound}"}} {cumulative}')
                cumulative += hist["overflow"]
                lines.append(f'repro_serve_tier_latency_ms_bucket'
                             f'{{tier="{tname}",le="+Inf"}} {cumulative}')
                lines.append(f'repro_serve_tier_latency_ms_sum'
                             f'{{tier="{tname}"}} {hist["sum"]}')
                lines.append(f'repro_serve_tier_latency_ms_count'
                             f'{{tier="{tname}"}} {hist["count"]}')
            lines.append("# HELP repro_serve_tier_slo_attainment fraction "
                         "of SLO-carrying requests served within SLO")
            lines.append("# TYPE repro_serve_tier_slo_attainment gauge")
            for tname, tier in snap["tiers"].items():
                att = tier["slo_attainment"]
                if att is not None:
                    lines.append(f'repro_serve_tier_slo_attainment'
                                 f'{{tier="{tname}"}} {att}')
        for phase, tot in snap.get("phases", {}).items():
            lines.append(
                f'repro_trace_phase_ms_total{{phase="{phase}"}} '
                f'{tot["total_ms"]}')
            lines.append(
                f'repro_trace_phase_count_total{{phase="{phase}"}} '
                f'{tot["count"]}')
        if "engine" in snap:
            eng = snap["engine"]
            gauge("repro_engine_plan_hit_rate",
                  "plan-cache hit rate of the serving engine",
                  eng["plan_hit_rate"])
            gauge("repro_engine_bytes_cached",
                  "bytes held by the engine plan+artifact caches",
                  eng["bytes_cached"])
            counter("repro_engine_profiles_built_total",
                    "kernel profiles built by the serving engine",
                    eng["profiles_built"])
            counter("repro_engine_transposes_built_total",
                    "csr2csc transposes built by the serving engine",
                    eng["transposes_built"])
            counter("repro_engine_evictions_total",
                    "LRU evictions in the serving engine",
                    eng["evictions"])
            counter("repro_engine_compiled_kernels_built_total",
                    "AOT sparse-kernel bundles compiled by the engine",
                    eng["compiled_kernels_built"])
            counter("repro_engine_compile_fallbacks_total",
                    "sparse compilations that fell back to interpreted",
                    eng["compile_fallbacks"])
            lines.append("# HELP repro_engine_artifact_entries artifact-LRU "
                         "entries by kind")
            lines.append("# TYPE repro_engine_artifact_entries gauge")
            for kind in sorted(eng.get("artifact_kinds", {})):
                lines.append(
                    f'repro_engine_artifact_entries{{kind="{kind}"}} '
                    f'{eng["artifact_kinds"][kind]}')
        return "\n".join(lines) + "\n"
