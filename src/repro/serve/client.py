"""In-process client for :class:`~repro.serve.server.PatternServer`.

Mirrors the ``engine.evaluate`` keyword surface so tests and benchmarks can
swap a direct engine call for a served one without reshaping arguments:

    with PatternServer() as server:
        client = ServeClient(server)
        resp = client.evaluate(X, y, z=y, beta=1e-3)
        assert resp.ok and resp.result is not None
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CsrMatrix
from .request import ServeFuture, ServeRequest, ServeResponse
from .server import PatternServer


class ServeClient:
    """Thin convenience wrapper building ServeRequests for one server."""

    def __init__(self, server: PatternServer):
        self.server = server

    def submit(self, X: CsrMatrix | np.ndarray, y: np.ndarray, *,
               v: np.ndarray | None = None, z: np.ndarray | None = None,
               alpha: float = 1.0, beta: float = 0.0, inner: bool = True,
               strategy: str = "auto", deadline_ms: float | None = None,
               tenant: str = "", tier: str = "",
               slo_ms: float | None = None, block: bool = False,
               timeout: float | None = None) -> ServeFuture:
        req = ServeRequest(X, y, v=v, z=z, alpha=alpha, beta=beta,
                           inner=inner, strategy=strategy,
                           deadline_ms=deadline_ms, tenant=tenant,
                           tier=tier, slo_ms=slo_ms)
        return self.server.submit(req, block=block, timeout=timeout)

    def evaluate(self, X: CsrMatrix | np.ndarray, y: np.ndarray, *,
                 wait_timeout: float | None = None,
                 **kw) -> ServeResponse:
        """Submit with backpressure and wait for the terminal response."""
        return self.submit(X, y, block=True, **kw).result(wait_timeout)

    def map(self, requests, block: bool = False,
            wait_timeout: float | None = None) -> list[ServeResponse]:
        """Submit a sequence of :class:`ServeRequest`, gather in order."""
        futures = [self.server.submit(r, block=block) for r in requests]
        return [f.result(wait_timeout) for f in futures]
