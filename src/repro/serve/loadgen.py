"""Workload traces and the open/closed-loop load generator.

A *workload trace* is a plain-JSON description of a serving experiment:
the matrices (as seeded synthetic specs, so a trace file is a few KB, not
gigabytes of data), the request stream (which matrix, which vector seed,
arrival offset, deadline), and the loop mode.  ``repro loadgen``
synthesizes traces — fingerprint popularity follows a Zipf(s) law, arrival
times a Poisson process at the configured rate, deadlines a uniform spread
around the target — and ``repro serve`` (or :func:`run_workload`) replays
them through a :class:`~repro.serve.server.PatternServer`:

* **open loop** — requests are submitted at their trace arrival times
  regardless of completions (non-blocking: a full queue sheds).  With no
  ``rate_rps`` the trace is a *burst*: everything is offered at t=0, which
  is the backlog-replay mode the serving benchmark uses.
* **closed loop** — ``concurrency`` workers each keep one request
  outstanding, submitting with backpressure; offered load adapts to
  service capacity (no shedding, by construction).

Every request is deterministic given the trace (seeded vectors), so a
replay can be verified bit-identically against direct, uncached
evaluation — the zero-divergence guarantee the benchmark asserts.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from ..core.api import evaluate as evaluate_uncached
from ..sparse.csr import CsrMatrix
from ..sparse.generate import random_csr
from .request import ServeRequest
from .sched import TierSpec
from .server import PatternServer

TRACE_VERSION = 1
MODES = ("open", "closed")


def parse_tier_mix(spec: str) -> dict[str, dict]:
    """Parse a mixed-tenant spec: ``name:share[:slo_ms[:weight]]``, comma-
    separated.  Position is priority (first tier listed ranks highest /
    sheds last); shares are normalized over the listed tiers.  Example:
    ``"interactive:0.25:75:8,batch:0.75"``.
    """
    mix: dict[str, dict] = {}
    for rank, part in enumerate(p for p in spec.split(",") if p.strip()):
        fields = part.strip().split(":")
        if not 2 <= len(fields) <= 4 or not fields[0]:
            raise ValueError(f"bad tier-mix entry {part!r}; expected "
                             f"name:share[:slo_ms[:weight]]")
        name = fields[0]
        if name in mix:
            raise ValueError(f"duplicate tier {name!r} in mix")
        share = float(fields[1])
        if share <= 0:
            raise ValueError(f"tier {name!r}: share must be > 0")
        slo = float(fields[2]) if len(fields) > 2 and fields[2] else None
        weight = float(fields[3]) if len(fields) > 3 and fields[3] else 1.0
        mix[name] = {"share": share, "slo_ms": slo, "weight": weight,
                     "rank": rank}
    if not mix:
        raise ValueError("tier mix names no tiers")
    total = sum(m["share"] for m in mix.values())
    for m in mix.values():
        m["share"] /= total
    return mix


def tiers_from_trace(trace: dict) -> dict[str, TierSpec] | None:
    """TierSpecs for a trace's ``tiers`` block (None for untiered traces),
    so a replay can configure the server exactly as the trace intends."""
    mix = trace.get("tiers")
    if not mix:
        return None
    return {name: TierSpec(name, weight=float(m.get("weight", 1.0)),
                           rank=int(m.get("rank", i)),
                           slo_ms=m.get("slo_ms"))
            for i, (name, m) in enumerate(mix.items())}


# ----------------------------------------------------------------- synthesis
def zipf_weights(k: int, s: float) -> np.ndarray:
    """Normalized Zipf(s) popularity over ``k`` ranks (rank 1 hottest)."""
    if k < 1:
        raise ValueError("need at least one rank")
    ranks = np.arange(1, k + 1, dtype=np.float64)
    w = ranks ** -float(s)
    return w / w.sum()


def synthesize_workload(*, matrices: int = 8, requests: int = 200,
                        zipf: float = 1.1, rows: int = 2000, cols: int = 96,
                        sparsity: float = 0.05,
                        rate_rps: float | None = None, mode: str = "open",
                        concurrency: int = 8,
                        deadline_ms: float | None = None,
                        deadline_spread: float = 0.0,
                        strategy: str = "fused", beta: float = 1e-3,
                        seed: int = 0,
                        tier_mix: dict[str, dict] | None = None) -> dict:
    """Build a JSON-able trace with Zipf-skewed fingerprint popularity.

    ``tier_mix`` (see :func:`parse_tier_mix`) makes the trace
    mixed-tenant: each request draws a tier by share and carries that
    tier's name, a per-tier tenant label, and the tier's SLO; the mix
    itself is recorded in the trace's ``tiers`` block so a replay can
    reconstruct the server's :class:`~repro.serve.sched.TierSpec` map
    (:func:`tiers_from_trace`).
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if matrices < 1 or requests < 1:
        raise ValueError("need at least one matrix and one request")
    if not 0.0 <= deadline_spread < 1.0:
        raise ValueError("deadline_spread must be in [0, 1)")
    rng = np.random.default_rng(seed)
    mats = [{"name": f"m{i}", "spec": f"{rows}x{cols}:{sparsity}",
             "seed": seed * 1000 + i} for i in range(matrices)]
    weights = zipf_weights(matrices, zipf)
    picks = rng.choice(matrices, size=requests, p=weights)
    at = np.zeros(requests)
    if rate_rps:
        # Poisson arrivals: exponential inter-arrival gaps at rate_rps
        at = np.cumsum(rng.exponential(1e3 / rate_rps, size=requests))
    tier_names: list[str] = []
    tier_picks = None
    if tier_mix:
        tier_names = list(tier_mix)
        shares = np.array([tier_mix[n]["share"] for n in tier_names])
        tier_picks = rng.choice(len(tier_names), size=requests,
                                p=shares / shares.sum())
    reqs = []
    for i in range(requests):
        dl = None
        if deadline_ms is not None:
            lo = deadline_ms * (1.0 - deadline_spread)
            hi = deadline_ms * (1.0 + deadline_spread)
            dl = float(rng.uniform(lo, hi))
        entry = {"matrix": mats[int(picks[i])]["name"],
                 "seed": int(rng.integers(0, 2**31)),
                 "at_ms": float(at[i]),
                 "deadline_ms": dl,
                 "strategy": strategy,
                 "beta": beta}
        if tier_picks is not None:
            tname = tier_names[int(tier_picks[i])]
            entry["tier"] = tname
            entry["tenant"] = f"tenant-{tname}"
            entry["slo_ms"] = tier_mix[tname]["slo_ms"]
        reqs.append(entry)
    trace = {"version": TRACE_VERSION, "mode": mode,
             "rate_rps": rate_rps, "concurrency": concurrency,
             "zipf": zipf, "seed": seed,
             "matrices": mats, "requests": reqs}
    if tier_mix:
        trace["tiers"] = tier_mix
    return trace


def save_workload(path, trace: dict) -> None:
    with open(path, "w") as f:
        json.dump(trace, f, indent=2)
        f.write("\n")


def load_workload(path) -> dict:
    """Read and validate a trace file (raises ``ValueError`` on bad shape)."""
    with open(path) as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(trace, dict):
        raise ValueError(f"{path}: workload trace must be a JSON object")
    version = trace.get("version")
    if version != TRACE_VERSION:
        raise ValueError(f"{path}: unsupported trace version {version!r} "
                         f"(expected {TRACE_VERSION})")
    if trace.get("mode") not in MODES:
        raise ValueError(f"{path}: trace mode must be one of {MODES}")
    names = set()
    for m in trace.get("matrices", []):
        for field in ("name", "spec", "seed"):
            if field not in m:
                raise ValueError(f"{path}: matrix entry missing {field!r}")
        names.add(m["name"])
    if not names:
        raise ValueError(f"{path}: trace has no matrices")
    if not trace.get("requests"):
        raise ValueError(f"{path}: trace has no requests")
    for r in trace["requests"]:
        if r.get("matrix") not in names:
            raise ValueError(f"{path}: request references unknown matrix "
                             f"{r.get('matrix')!r}")
    return trace


def build_matrices(trace: dict) -> dict[str, CsrMatrix]:
    """Materialize the trace's seeded synthetic matrices."""
    out: dict[str, CsrMatrix] = {}
    for m in trace["matrices"]:
        dims, sparsity = m["spec"].split(":")
        rows, cols = (int(v) for v in dims.lower().split("x"))
        out[m["name"]] = random_csr(rows, cols, float(sparsity),
                                    rng=int(m["seed"]))
    return out


def materialize_request(entry: dict, X: CsrMatrix) -> ServeRequest:
    """Deterministic ServeRequest for one trace entry (seeded vectors)."""
    rng = np.random.default_rng(int(entry["seed"]))
    y = rng.normal(size=X.n)
    beta = float(entry.get("beta", 0.0))
    return ServeRequest(X, y, z=(y if beta != 0.0 else None), beta=beta,
                        strategy=entry.get("strategy", "auto"),
                        deadline_ms=entry.get("deadline_ms"),
                        tenant=entry.get("tenant", ""),
                        tier=entry.get("tier", ""),
                        slo_ms=entry.get("slo_ms"))


def materialize_requests(trace: dict,
                         matrices: dict[str, CsrMatrix] | None = None
                         ) -> list[ServeRequest]:
    """All of a trace's requests, in trace order."""
    if matrices is None:
        matrices = build_matrices(trace)
    return [materialize_request(e, matrices[e["matrix"]])
            for e in trace["requests"]]


# ------------------------------------------------------------------- running
def percentile(values, q: float) -> float:
    """Exact percentile (linear interpolation) of a value list."""
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64),
                               q * 100.0))


def run_workload(server: PatternServer, trace: dict,
                 verify: bool = False) -> dict:
    """Replay a trace through a running server; returns the latency report.

    ``verify=True`` re-evaluates every completed request through uncached
    :func:`repro.core.api.evaluate` and counts byte-level divergences
    (always expected to be zero — the engine never caches numerics).
    """
    matrices = build_matrices(trace)
    entries = trace["requests"]
    requests = materialize_requests(trace, matrices)
    mode = trace.get("mode", "open")
    t0 = time.monotonic()

    if mode == "closed":
        concurrency = max(1, int(trace.get("concurrency") or 1))
        responses: list = [None] * len(requests)
        next_index = {"i": 0}
        index_lock = threading.Lock()

        def worker():
            while True:
                with index_lock:
                    i = next_index["i"]
                    if i >= len(requests):
                        return
                    next_index["i"] = i + 1
                responses[i] = server.evaluate(requests[i])

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(concurrency)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    else:
        futures = []
        for entry, req in zip(entries, requests):
            due = t0 + float(entry.get("at_ms", 0.0)) / 1e3
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            futures.append(server.submit(req, block=False))
        responses = [f.result() for f in futures]
    wall_s = time.monotonic() - t0

    by_status: dict[str, int] = {}
    latencies, waits, services = [], [], []
    warm = 0
    for resp in responses:
        by_status[resp.status] = by_status.get(resp.status, 0) + 1
        if resp.ok:
            latencies.append(resp.latency_ms)
            waits.append(resp.wait_ms)
            services.append(resp.service_ms)
            warm += bool(resp.cached)
    completed = by_status.get("ok", 0)

    tier_report: dict[str, dict] = {}
    if trace.get("tiers") or any("tier" in e for e in entries):
        for entry, resp in zip(entries, responses):
            name = entry.get("tier") or resp.tier or "default"
            rec = tier_report.setdefault(
                name, {"requests": 0, "by_status": {}, "_lat": [],
                       "slo_ms": entry.get("slo_ms"),
                       "_slo_ok": 0, "_slo_n": 0})
            rec["requests"] += 1
            rec["by_status"][resp.status] = \
                rec["by_status"].get(resp.status, 0) + 1
            if resp.ok:
                rec["_lat"].append(resp.latency_ms)
            slo = entry.get("slo_ms")
            if slo is not None:
                rec["_slo_n"] += 1
                if resp.ok and resp.latency_ms <= slo:
                    rec["_slo_ok"] += 1
        for rec in tier_report.values():
            lat = rec.pop("_lat")
            ok, n = rec.pop("_slo_ok"), rec.pop("_slo_n")
            rec["latency_ms"] = {"p50": percentile(lat, 0.50),
                                 "p99": percentile(lat, 0.99)}
            rec["slo_attainment"] = (ok / n) if n else None

    divergent = 0
    if verify:
        for entry, req, resp in zip(entries, requests, responses):
            if not resp.ok:
                continue
            ref = evaluate_uncached(req.X, req.y, v=req.v, z=req.z,
                                    alpha=req.alpha, beta=req.beta,
                                    strategy=req.strategy,
                                    ctx=server.engine.ctx)
            if not np.array_equal(resp.result.output, ref.output):
                divergent += 1

    return {
        "mode": mode,
        "requests": len(requests),
        "by_status": by_status,
        "completed": completed,
        "wall_s": wall_s,
        "throughput_rps": completed / wall_s if wall_s > 0 else 0.0,
        "latency_ms": {"p50": percentile(latencies, 0.50),
                       "p99": percentile(latencies, 0.99),
                       "mean": (float(np.mean(latencies))
                                if latencies else 0.0),
                       "max": max(latencies, default=0.0)},
        "wait_ms_p99": percentile(waits, 0.99),
        "service_ms_p99": percentile(services, 0.99),
        "warm_fraction": warm / completed if completed else 0.0,
        "divergent": divergent if verify else None,
        "tiers": {k: tier_report[k] for k in sorted(tier_report)} or None,
    }


def format_report(report: dict) -> str:
    """One human-readable block for the CLI."""
    lat = report["latency_ms"]
    statuses = ", ".join(f"{k}={v}"
                         for k, v in sorted(report["by_status"].items()))
    lines = [
        f"mode:        {report['mode']}",
        f"requests:    {report['requests']} ({statuses})",
        f"wall:        {report['wall_s'] * 1e3:10.1f} ms "
        f"({report['throughput_rps']:.1f} req/s)",
        f"latency:     p50 {lat['p50']:.2f} ms, p99 {lat['p99']:.2f} ms, "
        f"mean {lat['mean']:.2f} ms, max {lat['max']:.2f} ms",
        f"queue wait:  p99 {report['wait_ms_p99']:.2f} ms; "
        f"service p99 {report['service_ms_p99']:.2f} ms",
        f"warm:        {100 * report['warm_fraction']:.1f}% of completed "
        "requests fully cached",
    ]
    for name, rec in (report.get("tiers") or {}).items():
        att = rec["slo_attainment"]
        att_s = f"{100 * att:.1f}% SLO attainment" if att is not None \
            else "no SLO"
        tier_statuses = ", ".join(
            f"{k}={v}" for k, v in sorted(rec["by_status"].items()))
        lines.append(
            f"tier {name}: {rec['requests']} reqs ({tier_statuses}); "
            f"p50 {rec['latency_ms']['p50']:.2f} ms, "
            f"p99 {rec['latency_ms']['p99']:.2f} ms; {att_s}")
    if report.get("divergent") is not None:
        lines.append(f"verified:    {report['divergent']} divergent outputs "
                     "vs uncached evaluation")
    return "\n".join(lines)
