"""Bounded admission queue with backpressure, draining, and close semantics.

The server's front door.  ``offer`` either sheds (non-blocking, queue full
-> ``False``) or exerts backpressure (blocking until space or timeout);
``drain`` is the scheduler side: block until at least one item is queued,
then *linger* briefly so a micro-batch can accumulate, then take up to
``max_items`` in FIFO order.  ``close`` wakes every waiter and makes all
subsequent offers fail, which is what gives shutdown its deterministic
rejection path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Iterable


class AdmissionQueue:
    """Thread-safe bounded FIFO used between ``submit`` and the scheduler."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # ---------------------------------------------------------- producer side
    def offer(self, item, block: bool = False,
              timeout: float | None = None) -> bool:
        """Enqueue ``item``; returns False when shed, closed, or timed out."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        with self._not_full:
            while len(self._items) >= self.capacity and not self._closed:
                if not block:
                    return False
                if deadline is None:
                    self._not_full.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._not_full.wait(remaining)
            if self._closed:
                return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    def offer_preempting(self, item, shed_key) -> tuple[bool, object | None]:
        """Enqueue ``item``, evicting the worst queued item when full.

        ``shed_key`` ranks shed candidates (the *maximum* key sheds
        first) across the queued items **plus the newcomer**; when the
        newcomer itself ranks worst it is refused outright, so a flood
        of low-tier traffic can never push out queued high-tier work.
        Returns ``(admitted, victim)`` — the caller owns resolving the
        evicted victim (the scheduler sheds it deterministically).
        """
        with self._not_full:
            if self._closed:
                return False, None
            if len(self._items) < self.capacity:
                self._items.append(item)
                self._not_empty.notify()
                return True, None
            worst = max(self._items, key=shed_key)
            if shed_key(item) >= shed_key(worst):
                return False, None
            self._items.remove(worst)
            self._items.append(item)
            self._not_empty.notify()
            return True, worst

    # ---------------------------------------------------------- consumer side
    def drain(self, max_items: int | None = None,
              wait_s: float | None = 0.05,
              linger_s: float = 0.0) -> list:
        """Take up to ``max_items`` in FIFO order.

        Blocks up to ``wait_s`` for the first item (``None`` = forever).
        Once one is present, waits up to ``linger_s`` more — or until
        ``max_items`` have accumulated — so the caller can form a fuller
        micro-batch.  Returns ``[]`` on timeout or when closed and empty.
        """
        deadline = (time.monotonic() + wait_s) if wait_s is not None else None
        with self._not_empty:
            while not self._items and not self._closed:
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return []
                    self._not_empty.wait(remaining)
            if not self._items:
                return []
            if linger_s > 0:
                linger_deadline = time.monotonic() + linger_s
                while (not self._closed
                       and (max_items is None
                            or len(self._items) < max_items)):
                    remaining = linger_deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
            take = len(self._items) if max_items is None \
                else min(max_items, len(self._items))
            out = [self._items.popleft() for _ in range(take)]
            self._not_full.notify_all()
            return out

    def reject_pending(self) -> list:
        """Atomically remove and return everything still queued."""
        with self._lock:
            out = list(self._items)
            self._items.clear()
            self._not_full.notify_all()
            return out

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Fail all future offers and wake every blocked producer/consumer."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __iter__(self) -> Iterable:  # pragma: no cover - debugging aid
        with self._lock:
            return iter(list(self._items))
