"""The pattern-evaluation server: admission -> micro-batching -> workers.

``PatternServer`` turns a :class:`~repro.core.engine.PatternEngine` into a
long-lived service:

* **admission** — a bounded :class:`~repro.serve.queue.AdmissionQueue`;
  non-blocking submits are *shed* when it is full (load-shedding),
  blocking submits exert backpressure.  Each request may carry a relative
  deadline; requests that expire while queued are rejected with a
  ``timeout`` status instead of being evaluated.
* **scheduling** — a single scheduler thread drains the queue (with a
  short linger so batches fill), forms micro-batches with
  :func:`~repro.serve.batcher.form_batches` (``fingerprint`` policy groups
  requests by matrix content fingerprint so each batch reuses one cached
  profile/plan/transpose; ``fifo`` is the naive baseline), and dispatches
  at most ``workers`` batches concurrently — undispatched work stays in
  the admission queue where it remains sheddable and rejectable.
* **execution** — a worker pool drains batches through
  ``PatternEngine.evaluate_many``; numerical results are never cached, so
  server outputs are bit-identical to direct ``engine.evaluate`` calls.
* **shutdown** — :meth:`stop` stops admission, lets in-flight batches
  complete, resolves everything still queued with a deterministic
  ``rejected`` response, and joins every thread it started.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .. import trace
from ..core.engine import PatternEngine
from .autoscale import AutoscaleConfig, Autoscaler
from .batcher import POLICIES, form_batches
from .metrics import ServeMetrics
from .queue import AdmissionQueue
from .request import (STATUS_ERROR, STATUS_OK, STATUS_REJECTED, STATUS_SHED,
                      STATUS_TIMEOUT, ServeFuture, ServeRequest,
                      ServeResponse, _Ticket)
from .sched import (CostModel, TierSpec, default_tiers, pick_next_batch,
                    resolve_tier, shed_sort_key)


@dataclass
class ServerConfig:
    """Tunables for one :class:`PatternServer`."""

    queue_capacity: int = 256        # admission bound (backpressure/shed)
    max_batch: int = 16              # requests per dispatched micro-batch
    batch_linger_ms: float = 1.0     # wait for a batch to fill before cut
    workers: int = 2                 # concurrent batches in flight
    engine_workers: int = 1          # threads inside evaluate_many per batch
    policy: str = "fingerprint"      # "fingerprint" | "fifo" | "edf"
    default_deadline_ms: float | None = None
    drain_lookahead: int | None = None   # tickets pulled per round (None=all)
    tiers: dict[str, TierSpec] | None = None  # None = stock two-tier split
    default_slo_ms: float | None = None  # SLO for tiers that name none
    autoscale: AutoscaleConfig | None = None  # None = fixed worker count

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown batching policy {self.policy!r}; "
                             f"expected one of {POLICIES}")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


class PatternServer:
    """Micro-batching evaluation server over one PatternEngine session."""

    def __init__(self, engine: PatternEngine | None = None,
                 config: ServerConfig | None = None,
                 start: bool = True):
        self.engine = engine or PatternEngine()
        self.config = config or ServerConfig()
        self.metrics = ServeMetrics()
        self.cost_model = CostModel()
        self._tiers = self.config.tiers or default_tiers()
        self._fair_vt: dict[str, float] = {}
        asc = self.config.autoscale
        self._autoscaler = Autoscaler(asc, initial=self.config.workers) \
            if asc is not None else None
        self._workers_target = self._autoscaler.target \
            if self._autoscaler is not None else self.config.workers
        self._last_autoscale = 0.0
        self._prev_flow = self.metrics.flow_totals()
        pool_size = max(self.config.workers,
                        asc.max_workers if asc is not None else 0)
        self._queue = AdmissionQueue(self.config.queue_capacity)
        self._pool = ThreadPoolExecutor(
            max_workers=pool_size,
            thread_name_prefix="repro-serve-worker")
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="repro-serve-scheduler",
            daemon=True)
        self._stop_event = threading.Event()
        # an Event, not a bare bool: submit() checks it without taking the
        # lifecycle lock, so the flag needs its own synchronization
        self._accepting = threading.Event()
        self._accepting.set()
        self._stopped = False
        self._shutdown_complete = False
        # reentrant: an interrupted stop() may be retried from the same
        # thread (the CLI's SIGINT path) without deadlocking
        self._lifecycle_lock = threading.RLock()
        self._flight_lock = threading.Lock()
        self._flight_cond = threading.Condition(self._flight_lock)
        self._in_flight = 0
        self._next_id = 0
        self._id_lock = threading.Lock()
        if start:
            self.start()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "PatternServer":
        """Start the scheduler thread (idempotent)."""
        with self._lifecycle_lock:
            if self._stopped:
                raise RuntimeError("server was stopped; create a new one")
            if not self._scheduler.is_alive():
                try:
                    self._scheduler.start()
                except RuntimeError:       # already started and finished
                    pass
        return self

    # joining the scheduler/pool under the lifecycle lock is the point:
    # concurrent stop()/start() calls must observe a completed shutdown
    def stop(self) -> None:  # analyze: allow(lock-held-blocking)
        """Graceful shutdown: drain in-flight work, reject queued requests.

        Safe to call more than once, including again after a
        ``KeyboardInterrupt`` cut a previous call short mid-join: the
        shutdown is only latched as complete once every thread has been
        joined, so a retry finishes the drain instead of silently leaking
        the scheduler (the ``repro serve`` SIGINT regression).
        """
        with self._lifecycle_lock:
            if self._shutdown_complete:
                return
            self._stopped = True
            self._accepting.clear()
            started = self._scheduler.ident is not None
            self._queue.close()
            self._stop_event.set()
            with self._flight_cond:
                self._flight_cond.notify_all()
            if started:
                self._scheduler.join()
            else:
                # scheduler never ran: reject the backlog ourselves
                for ticket in self._queue.reject_pending():
                    self._reject(ticket, "server shutdown")
            self._pool.shutdown(wait=True)
            self._shutdown_complete = True

    close = stop

    def __enter__(self) -> "PatternServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -------------------------------------------------------------- frontend
    def submit(self, request: ServeRequest, block: bool = False,
               timeout: float | None = None) -> ServeFuture:
        """Offer a request; always returns a future that will resolve.

        ``block=True`` waits for queue space (backpressure) up to
        ``timeout`` seconds; otherwise a full queue sheds immediately.
        Shape errors in the request raise ``ValueError`` here, in the
        caller's thread, before anything is enqueued.
        """
        with trace.span("admission", "serve") as sp:
            request.validate()
            rid = self._new_id()
            key = request.group_key()
            spec = resolve_tier(request.tier, self._tiers)
            slo_ms = request.slo_ms
            if slo_ms is None:
                slo_ms = spec.slo_ms
            if slo_ms is None:
                slo_ms = self.config.default_slo_ms
            deadline_ms = request.deadline_ms
            if deadline_ms is None:
                deadline_ms = self.config.default_deadline_ms
            now = time.monotonic()
            ticket = _Ticket(
                id=rid, request=request.to_pattern_request(), key=key,
                enqueued_at=now,
                deadline_at=(now + deadline_ms / 1e3)
                if deadline_ms is not None else None,
                tier=spec.name, slo_ms=slo_ms)
            self.metrics.inc("submitted")
            sp.set("rid", rid)
            if not self._accepting.is_set():
                self._reject(ticket, "server shutdown")
                sp.set("outcome", "rejected")
                return ticket.future
            if self.config.policy == "edf" and not block:
                admitted, victim = self._queue.offer_preempting(
                    ticket, lambda t: shed_sort_key(t, self._tiers))
                if victim is not None:
                    self.metrics.inc("preempted")
                    self._shed(victim,
                               "preempted by higher-priority arrival")
                offered = admitted
            else:
                offered = self._queue.offer(ticket, block=block,
                                            timeout=timeout)
            if not offered:
                if self._accepting.is_set() and not self._queue.closed:
                    sp.set("outcome", "shed")
                    self._shed(ticket,
                               f"admission queue full "
                               f"(capacity {self.config.queue_capacity})")
                else:
                    self._reject(ticket, "server shutdown")
                    sp.set("outcome", "rejected")
            else:
                self.metrics.inc("admitted")
                sp.set("outcome", "admitted")
            return ticket.future

    def evaluate(self, request: ServeRequest, block: bool = True,
                 timeout: float | None = None,
                 wait_timeout: float | None = None) -> ServeResponse:
        """Submit and wait for the terminal response."""
        return self.submit(request, block=block,
                           timeout=timeout).result(wait_timeout)

    # ---------------------------------------------------------------- gauges
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        with self._flight_lock:
            return self._in_flight

    @property
    def workers_target(self) -> int:
        """Current worker-slot target (autoscaled, else the config value)."""
        with self._flight_lock:
            return self._workers_target

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and nothing is in flight."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        with self._flight_cond:
            while self._in_flight > 0 or len(self._queue) > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._flight_cond.wait(remaining if remaining is not None
                                       else 0.05)
        return True

    def _trace_phases(self) -> dict | None:
        """Span-derived phase aggregates when a tracer is installed."""
        tracer = trace.active()
        return tracer.phase_totals() if tracer is not None else None

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot(self.queue_depth, self.in_flight,
                                     self.engine.snapshot(),
                                     phases=self._trace_phases(),
                                     workers=self.workers_target)

    def metrics_json(self, indent: int | None = 2) -> str:
        return self.metrics.to_json(self.queue_depth, self.in_flight,
                                    self.engine.snapshot(), indent=indent,
                                    phases=self._trace_phases(),
                                    workers=self.workers_target)

    def metrics_prometheus(self) -> str:
        return self.metrics.to_prometheus(self.queue_depth, self.in_flight,
                                          self.engine.snapshot(),
                                          phases=self._trace_phases(),
                                          workers=self.workers_target)

    # -------------------------------------------------------------- internals
    def _new_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    def _reject(self, ticket: _Ticket, reason: str) -> None:
        if ticket.future.resolve(ServeResponse(
                id=ticket.id, status=STATUS_REJECTED, reason=reason,
                fingerprint=ticket.key[0], tier=ticket.tier)):
            self.metrics.inc("rejected")
            self.metrics.observe_tier(ticket.tier, STATUS_REJECTED,
                                      slo_ms=ticket.slo_ms)

    def _shed(self, ticket: _Ticket, reason: str) -> None:
        if ticket.future.resolve(ServeResponse(
                id=ticket.id, status=STATUS_SHED, reason=reason,
                fingerprint=ticket.key[0], tier=ticket.tier)):
            self.metrics.inc("shed")
            self.metrics.observe_tier(ticket.tier, STATUS_SHED,
                                      slo_ms=ticket.slo_ms)

    def _schedule_loop(self) -> None:
        if self.config.policy == "edf":
            self._schedule_loop_edf()
            return
        cfg = self.config
        linger_s = max(cfg.batch_linger_ms, 0.0) / 1e3
        pending: deque[list[_Ticket]] = deque()
        while not self._stop_event.is_set():
            if not pending:
                tickets = self._queue.drain(
                    max_items=cfg.drain_lookahead, wait_s=0.05,
                    linger_s=linger_s)
                self._maybe_autoscale()
                if not tickets:
                    continue
                with trace.span("batch-formation", "serve",
                                policy=cfg.policy) as sp:
                    batches = form_batches(tickets, cfg.policy,
                                           cfg.max_batch)
                    sp.count(tickets=len(tickets), batches=len(batches))
                pending.extend(batches)
            if not self._acquire_slot():
                break                       # stopping; pending handled below
            self._pool.submit(self._run_batch, pending.popleft())
        # shutdown: everything not dispatched gets a deterministic rejection
        leftovers = [t for batch in pending for t in batch]
        leftovers.extend(self._queue.reject_pending())
        for ticket in leftovers:
            self._reject(ticket, "server shutdown")

    def _schedule_loop_edf(self) -> None:
        """EDF scheduling: one cost-sized batch picked per free slot.

        Unlike the fifo/fingerprint loop — which plans a whole drained
        round up front — the EDF loop keeps an unplanned ``backlog`` and
        runs :func:`~repro.serve.sched.pick_next_batch` once per
        dispatch, so requests arriving between dispatches join the very
        next decision (a late interactive request overtakes queued batch
        work instead of waiting out a pre-planned round).
        """
        cfg = self.config
        linger_s = max(cfg.batch_linger_ms, 0.0) / 1e3
        backlog: list[_Ticket] = []
        while not self._stop_event.is_set():
            tickets = self._queue.drain(
                max_items=cfg.drain_lookahead,
                wait_s=0.05 if not backlog else 0.0,
                linger_s=linger_s if not backlog else 0.0)
            if tickets and self.cost_model.snapshot()["observations"] == 0:
                # cold model on a traced server: seed the global fallback
                # from the span phase aggregates before the first dispatch
                self.cost_model.observe_phases(self._trace_phases())
            backlog.extend(tickets)
            self._maybe_autoscale()
            if not backlog:
                continue
            if not self._acquire_slot():
                break                       # stopping; backlog handled below
            with trace.span("batch-formation", "serve",
                            policy=cfg.policy) as sp:
                batch = pick_next_batch(
                    backlog, tiers=self._tiers, fair_vt=self._fair_vt,
                    cost_model=self.cost_model, max_batch=cfg.max_batch)
                assert batch is not None    # backlog was non-empty
                sp.count(tickets=len(batch) + len(backlog), batches=1)
            self._pool.submit(self._run_batch, batch)
        leftovers = backlog + self._queue.reject_pending()
        for ticket in leftovers:
            self._reject(ticket, "server shutdown")

    def _maybe_autoscale(self) -> None:
        """Sample the queue-wait/service ratio and apply the autoscaler.

        Runs on the scheduler thread at ``interval_s`` cadence; a target
        change widens/narrows the in-flight slot gate (the thread pool
        is sized at ``max_workers`` once) and is exported as a trace
        span plus the ``scale_up``/``scale_down`` counters.
        """
        asc = self._autoscaler
        if asc is None:
            return
        now = time.monotonic()
        if now - self._last_autoscale < asc.config.interval_s:
            return
        self._last_autoscale = now
        flow = self.metrics.flow_totals()
        prev, self._prev_flow = self._prev_flow, flow
        d_wait_n = flow["wait_count"] - prev["wait_count"]
        d_serv_n = flow["service_count"] - prev["service_count"]
        target = asc.observe(
            wait_ms=((flow["wait_ms_sum"] - prev["wait_ms_sum"]) / d_wait_n
                     if d_wait_n else 0.0),
            service_ms=((flow["service_ms_sum"] - prev["service_ms_sum"])
                        / d_serv_n if d_serv_n else 0.0),
            completed=flow["completed"] - prev["completed"],
            queue_depth=self.queue_depth, now=now)
        if target is None:
            return
        with self._flight_cond:
            old, self._workers_target = self._workers_target, target
            self._flight_cond.notify_all()
        direction = "up" if target > old else "down"
        self.metrics.inc(f"scale_{direction}")
        with trace.span("scale", "serve", direction=direction) as sp:
            sp.set("from", old)
            sp.set("to", target)

    def _acquire_slot(self) -> bool:
        """Wait for an in-flight slot; False when the server is stopping."""
        with self._flight_cond:
            while (self._in_flight >= self._workers_target
                   and not self._stop_event.is_set()):
                self._flight_cond.wait(0.05)
            if self._stop_event.is_set():
                return False
            self._in_flight += 1
            return True

    def _release_slot(self) -> None:
        with self._flight_cond:
            self._in_flight -= 1
            self._flight_cond.notify_all()

    def _run_batch(self, batch: list[_Ticket]) -> None:
        try:
            with trace.span("batch", "serve", size=len(batch),
                            policy=self.config.policy) as bsp:
                self._run_batch_traced(batch, bsp)
        except Exception as exc:           # never let a batch die silently
            for t in batch:
                if t.future.resolve(ServeResponse(
                        id=t.id, status=STATUS_ERROR,
                        reason=f"{type(exc).__name__}: {exc}",
                        fingerprint=t.key[0], tier=t.tier)):
                    self.metrics.inc("errors")
                    self.metrics.observe_tier(t.tier, STATUS_ERROR,
                                              slo_ms=t.slo_ms)
        finally:
            self._release_slot()

    def _run_batch_traced(self, batch: list[_Ticket], bsp) -> None:
        tracer = trace.active()
        batch_span_id = trace.current_id()
        now = time.monotonic()
        live: list[_Ticket] = []
        for t in batch:
            wait_ms = (now - t.enqueued_at) * 1e3
            if t.expired(now):
                self.metrics.inc("timeout")
                self.metrics.observe_wait(wait_ms)
                if tracer is not None:
                    tracer.add_span("queue-wait", "serve",
                                    t.enqueued_at, now,
                                    parent=batch_span_id,
                                    args={"rid": t.id,
                                          "status": "timeout"})
                if t.future.resolve(ServeResponse(
                        id=t.id, status=STATUS_TIMEOUT,
                        reason="deadline expired while queued",
                        fingerprint=t.key[0], wait_ms=wait_ms,
                        tier=t.tier)):
                    self.metrics.observe_tier(t.tier, STATUS_TIMEOUT,
                                              slo_ms=t.slo_ms)
            else:
                live.append(t)
        if not live:
            return
        results = self.engine.evaluate_many(
            [t.request for t in live],
            max_workers=self.config.engine_workers)
        done = time.monotonic()
        for t, br in zip(live, results):
            wait_ms = (now - t.enqueued_at) * 1e3
            latency_ms = (done - t.enqueued_at) * 1e3
            self.metrics.inc("completed")
            self.metrics.observe_wait(wait_ms)
            self.metrics.observe_latency(latency_ms)
            if tracer is not None:
                # per-request decomposition: queue wait runs from enqueue
                # to the moment *this* request's evaluation began inside
                # the (possibly serialized) batch; completion wait covers
                # its evaluation end until the whole batch resolves
                tracer.add_span("queue-wait", "serve",
                                t.enqueued_at, br.started_at,
                                parent=batch_span_id,
                                args={"rid": t.id, "status": "ok"})
                tracer.add_span("completion", "serve",
                                br.started_at + br.wall_ms / 1e3, done,
                                parent=batch_span_id,
                                args={"rid": t.id})
            self.cost_model.observe(t.key, br.wall_ms)
            if t.future.resolve(ServeResponse(
                    id=t.id, status=STATUS_OK, result=br.result,
                    fingerprint=t.key[0], wait_ms=wait_ms,
                    service_ms=br.wall_ms, latency_ms=latency_ms,
                    batch_size=len(live), cached=br.cached,
                    tier=t.tier)):
                self.metrics.observe_tier(t.tier, STATUS_OK,
                                          latency_ms=latency_ms,
                                          slo_ms=t.slo_ms)
        bsp.count(completed=len(live))
        self.metrics.observe_batch(len(live),
                                   [br.wall_ms for br in results])
