"""Dataset builders: the paper's synthetic sweeps and scaled real-data stand-ins.

* :func:`synthetic_sparse` / :func:`synthetic_dense` — the Figure 2-5
  workloads (paper: m = 500k rows, sparsity 0.01, n swept over
  {200 .. 4096} sparse / {32 .. 2048} dense).
* :func:`kdd_like` — a scaled stand-in for KDD2010 (paper: 15,009,374 rows x
  29,890,095 columns, 423,865,484 non-zeros => ~28 nnz/row, ultra-sparse with
  a power-law column popularity).  The phenomena that matter — n far beyond
  the shared-memory limit, tiny per-column collision probability, mu ~ 28 —
  are preserved under scaling.
* :func:`higgs_like` — a scaled stand-in for HIGGS (paper: 11,000,000 rows x
  28 dense physics features).

Scale defaults keep pure-Python runtimes reasonable; set ``scale=1.0`` (or
env ``REPRO_FULL_SCALE=1`` in the benches) for paper-sized inputs.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CsrMatrix
from ..sparse.generate import random_csr

#: paper-scale constants
KDD_ROWS, KDD_COLS, KDD_NNZ = 15_009_374, 29_890_095, 423_865_484
HIGGS_ROWS, HIGGS_COLS = 11_000_000, 28
SWEEP_ROWS = 500_000
SWEEP_SPARSITY = 0.01
SPARSE_SWEEP_COLUMNS = (200, 512, 1024, 2048, 3072, 4096)
DENSE_SWEEP_COLUMNS = (32, 64, 128, 256, 512, 1024, 2048)


def synthetic_sparse(n: int, m: int = SWEEP_ROWS,
                     sparsity: float = SWEEP_SPARSITY,
                     rng: np.random.Generator | int | None = None
                     ) -> CsrMatrix:
    """One point of the Figures 2-4 sweep: random CSR, uniform sparsity."""
    return random_csr(m, n, sparsity, rng=rng)


def synthetic_dense(n: int, m: int = SWEEP_ROWS,
                    rng: np.random.Generator | int | None = None
                    ) -> np.ndarray:
    """One point of the Figure 5 sweep: dense N(0,1) matrix."""
    r = np.random.default_rng(rng)
    return r.normal(size=(m, n))


def kdd_like(scale: float = 0.01,
             rng: np.random.Generator | int | None = None,
             col_skew: float = 4.0) -> CsrMatrix:
    """Ultra-sparse KDD2010 stand-in at ``scale`` of the paper's dimensions.

    Row lengths are geometric around mu ~ 28; column indices follow a
    power-law popularity (``u^col_skew`` inverse-CDF mapping), matching the
    hot-feature structure of the one-hot-encoded original.  Duplicate
    (row, col) pairs are permitted — CSR semantics sum them, and every kernel
    here (like cuSPARSE) handles duplicates by accumulation.
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    r = np.random.default_rng(rng)
    m = max(1, int(KDD_ROWS * scale))
    n = max(1, int(KDD_COLS * scale))
    mu = KDD_NNZ / KDD_ROWS                       # ~28.2 nnz per row
    row_nnz = r.geometric(1.0 / mu, size=m).astype(np.int64)
    np.minimum(row_nnz, n, out=row_nnz)
    row_off = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=row_off[1:])
    nnz = int(row_off[-1])
    # power-law column popularity via inverse-CDF of u^k, vectorized
    u = r.random(nnz)
    cols = np.minimum((n * u ** col_skew).astype(np.int64), n - 1)
    # sort columns within each row (CSR convention)
    rows = np.repeat(np.arange(m), row_nnz)
    order = np.lexsort((cols, rows))
    values = r.normal(size=nnz)
    return CsrMatrix((m, n), values, cols[order], row_off)


def higgs_like(scale: float = 0.01,
               rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Dense HIGGS stand-in: ``scale * 11M`` rows x 28 feature columns.

    Feature marginals mimic the original's mix of detector-level quantities
    (positive, long-tailed) and derived quantities (roughly unit-scale).
    """
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    r = np.random.default_rng(rng)
    m = max(1, int(HIGGS_ROWS * scale))
    X = np.empty((m, HIGGS_COLS), dtype=np.float64)
    for j in range(HIGGS_COLS):
        if j < 21:                                # low-level: lognormal-ish
            X[:, j] = r.lognormal(mean=0.0, sigma=0.5, size=m)
        else:                                     # derived: ~N(1, 0.3)
            X[:, j] = r.normal(1.0, 0.3, size=m)
    return X


def regression_targets(X, noise: float = 0.01,
                       rng: np.random.Generator | int | None = None
                       ) -> tuple[np.ndarray, np.ndarray]:
    """(y, w_true) for a linear-regression workload on ``X``."""
    r = np.random.default_rng(rng)
    m, n = X.shape
    w_true = r.normal(size=n)
    if isinstance(X, CsrMatrix):
        from ..sparse.ops import spmv
        y = spmv(X, w_true)
    else:
        y = np.asarray(X) @ w_true
    if noise:
        y = y + noise * r.normal(size=m)
    return y, w_true


def classification_labels(X, rng: np.random.Generator | int | None = None
                          ) -> np.ndarray:
    """-1/+1 labels from a random linear separator (for LogReg / SVM)."""
    y, _ = regression_targets(X, noise=0.1, rng=rng)
    t = np.sign(y - np.median(y))
    t[t == 0] = 1.0
    return t
