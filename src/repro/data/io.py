"""Saving and loading matrices and datasets (NumPy ``.npz`` containers).

Practical plumbing for a library users actually adopt: persist the CSR
substrate and regression/classification workloads to disk, reload them
bit-exactly, and exchange with SciPy when it is available.
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..sparse.csr import CsrMatrix

_FORMAT_VERSION = 1


def save_csr(path: str | pathlib.Path, X: CsrMatrix) -> None:
    """Write a CSR matrix to ``path`` (a ``.npz`` archive)."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind=np.bytes_(b"csr"),
        shape=np.asarray(X.shape, dtype=np.int64),
        values=X.values,
        col_idx=X.col_idx,
        row_off=X.row_off,
    )


def load_csr(path: str | pathlib.Path) -> CsrMatrix:
    """Load a CSR matrix written by :func:`save_csr` (validates invariants)."""
    with np.load(path) as f:
        if "kind" not in f or bytes(f["kind"]) != b"csr":
            raise ValueError(f"{path}: not a saved CSR matrix")
        version = int(f["format_version"])
        if version > _FORMAT_VERSION:
            raise ValueError(f"{path}: written by a newer format "
                             f"(v{version} > v{_FORMAT_VERSION})")
        shape = tuple(int(v) for v in f["shape"])
        return CsrMatrix(shape, f["values"], f["col_idx"], f["row_off"])


def save_dataset(path: str | pathlib.Path, X, y: np.ndarray,
                 **extra: np.ndarray) -> None:
    """Persist a supervised dataset: matrix + targets + named extras."""
    arrays: dict[str, np.ndarray] = {
        "format_version": np.int64(_FORMAT_VERSION),
        "y": np.asarray(y, dtype=np.float64),
    }
    if isinstance(X, CsrMatrix):
        arrays.update(kind=np.bytes_(b"csr"),
                      shape=np.asarray(X.shape, dtype=np.int64),
                      values=X.values, col_idx=X.col_idx,
                      row_off=X.row_off)
    else:
        arrays.update(kind=np.bytes_(b"dense"),
                      dense=np.asarray(X, dtype=np.float64))
    for name, arr in extra.items():
        if name in arrays:
            raise ValueError(f"extra array name {name!r} is reserved")
        arrays[f"extra_{name}"] = np.asarray(arr)
    np.savez_compressed(path, **arrays)


def load_dataset(path: str | pathlib.Path
                 ) -> tuple[CsrMatrix | np.ndarray, np.ndarray,
                            dict[str, np.ndarray]]:
    """Inverse of :func:`save_dataset`: (X, y, extras)."""
    with np.load(path) as f:
        kind = bytes(f["kind"])
        if kind == b"csr":
            shape = tuple(int(v) for v in f["shape"])
            X: CsrMatrix | np.ndarray = CsrMatrix(
                shape, f["values"], f["col_idx"], f["row_off"])
        elif kind == b"dense":
            X = np.array(f["dense"])
        else:
            raise ValueError(f"{path}: unknown dataset kind {kind!r}")
        y = np.array(f["y"])
        extras = {k[len("extra_"):]: np.array(f[k])
                  for k in f.files if k.startswith("extra_")}
    return X, y, extras


def to_scipy(X: CsrMatrix):
    """Convert to ``scipy.sparse.csr_matrix`` (cross-validation helper)."""
    from scipy.sparse import csr_matrix
    return csr_matrix((X.values, X.col_idx, X.row_off), shape=X.shape)


def from_scipy(S) -> CsrMatrix:
    """Build a :class:`CsrMatrix` from any SciPy sparse matrix."""
    S = S.tocsr()
    return CsrMatrix(S.shape, S.data.astype(np.float64),
                     S.indices.astype(np.int64),
                     S.indptr.astype(np.int64))
