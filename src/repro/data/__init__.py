"""Dataset builders for the paper's workloads (synthetic sweeps + stand-ins)."""

from .io import (from_scipy, load_csr, load_dataset, save_csr, save_dataset,
                 to_scipy)
from .synthetic import (DENSE_SWEEP_COLUMNS, HIGGS_COLS, HIGGS_ROWS,
                        KDD_COLS, KDD_NNZ, KDD_ROWS, SPARSE_SWEEP_COLUMNS,
                        SWEEP_ROWS, SWEEP_SPARSITY, classification_labels,
                        higgs_like, kdd_like, regression_targets,
                        synthetic_dense, synthetic_sparse)

__all__ = [
    "from_scipy", "load_csr", "load_dataset", "save_csr", "save_dataset",
    "to_scipy",
    "DENSE_SWEEP_COLUMNS", "HIGGS_COLS", "HIGGS_ROWS", "KDD_COLS",
    "KDD_NNZ", "KDD_ROWS", "SPARSE_SWEEP_COLUMNS", "SWEEP_ROWS",
    "SWEEP_SPARSITY", "classification_labels", "higgs_like", "kdd_like",
    "regression_targets", "synthetic_dense", "synthetic_sparse",
]
