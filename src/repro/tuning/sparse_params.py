"""Analytical launch-parameter model for the sparse fused kernel (§3.3).

Three parameters govern the sparse kernel: the vector size ``VS`` (threads
cooperating on one row, Eq. 4), the block size ``BS`` (chosen to maximize
occupancy given the kernel's 43 registers/thread and its
``(BS/VS + n) * sizeof(double)`` shared-memory request), and the coarsening
factor ``C`` (rows per vector, Eq. 5 — large C means fewer blocks and fewer
atomic writes to global memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec, GTX_TITAN
from ..gpu.launch import LaunchConfig
from ..gpu.occupancy import Occupancy, best_block_size, occupancy
from ..sparse.csr import CsrMatrix

#: registers/thread of the sparse fused kernel, as profiled by the paper
SPARSE_KERNEL_REGISTERS = 43


def select_vector_size(mean_row_nnz: float) -> int:
    """Eq. 4: pick VS from {1, 2, 4, 8, 16, 32} by the mean row length mu."""
    mu = mean_row_nnz
    if mu > 32:
        return 32
    for i in range(4, 0, -1):           # i in [1, 4]: 2^(i+1) >= mu > 2^i
        if 2 ** (i + 1) >= mu > 2 ** i:
            return 2 ** i
    return 1


def shared_bytes_needed(block_size: int, vector_size: int, n: int,
                        itemsize: int = 8) -> int:
    """The fused kernel's request: one slot per vector plus the w mirror."""
    return (block_size // vector_size + n) * itemsize


def max_shared_columns(device: DeviceSpec, block_size: int = 1024,
                       vector_size: int = 32, itemsize: int = 8) -> int:
    """Largest n whose w mirror fits in per-block shared memory (~6K)."""
    return device.shared_memory_per_block // itemsize - \
        block_size // vector_size


@dataclass(frozen=True)
class SparseParams:
    """Resolved launch parameters for the sparse fused kernel."""

    vector_size: int
    block_size: int
    coarsening: int
    grid_size: int
    shared_bytes: int
    registers: int
    variant: str                 # "shared" or "global" (large-n)
    occupancy: Occupancy

    def launch(self) -> LaunchConfig:
        return LaunchConfig(
            grid_size=self.grid_size,
            block_size=self.block_size,
            shared_bytes=self.shared_bytes,
            registers_per_thread=self.registers,
            vector_size=self.vector_size,
            coarsening=self.coarsening,
        )


def select_coarsening(device: DeviceSpec, m: int, vector_size: int,
                      occ: Occupancy) -> int:
    """Eq. 5: balance all rows over the device's resident vector slots."""
    resident_threads = occ.warps_per_sm * device.warp_size
    vector_slots = device.num_sms * max(1, resident_threads // vector_size)
    return max(1, -(-m // vector_slots))


def tune_sparse(X: CsrMatrix, device: DeviceSpec = GTX_TITAN,
                registers: int = SPARSE_KERNEL_REGISTERS,
                force_variant: str | None = None) -> SparseParams:
    """Full §3.3 parameter resolution for a CSR input.

    Chooses the shared-memory variant when the w mirror fits, otherwise the
    large-n variant that aggregates directly in global memory (the KDD2010
    regime).  ``force_variant`` overrides for ablation benchmarks.
    """
    m, n = X.shape
    vs = select_vector_size(X.mean_row_nnz)

    variant = force_variant
    if variant is None:
        variant = "shared" if n <= max_shared_columns(device) else "global"
    if variant not in ("shared", "global"):
        raise ValueError(f"unknown variant {variant!r}")

    if variant == "shared":
        def shm(bs: int) -> int:
            return shared_bytes_needed(bs, vs, n)
    else:
        # large-n: only the per-vector reduction slots live in shared memory
        def shm(bs: int) -> int:
            return (bs // vs) * 8

    bs, occ = best_block_size(device, registers, shm)
    c = select_coarsening(device, m, vs, occ)
    nv = bs // vs
    grid = max(1, -(-m // (nv * c)))
    return SparseParams(
        vector_size=vs, block_size=bs, coarsening=c, grid_size=grid,
        shared_bytes=shm(bs), registers=registers, variant=variant,
        occupancy=occ,
    )
