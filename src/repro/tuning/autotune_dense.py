"""Exhaustive sweep of the dense kernel's (TL, BS) space.

The paper profiles the dense kernel over thread loads TL in {1..40}
(23..255 registers) and block sizes that are register-allocation friendly,
then picks analytically (§3.3).  This sweep validates the dense model the
same way Figure 6 validates the sparse one: estimate every setting through
the cost model and locate the analytical pick.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.counters import PerfCounters
from ..gpu.costmodel import CostModel
from ..gpu.device import DeviceSpec, GTX_TITAN
from ..gpu.memory import coalesced_transactions
from ..gpu.occupancy import occupancy
from .dense_params import (MAX_THREAD_LOAD, DenseParams,
                           registers_for_thread_load,
                           select_vector_size_dense, tune_dense)

_D = 8


@dataclass(frozen=True)
class DenseSetting:
    thread_load: int
    vector_size: int
    block_size: int
    padded_n: int
    occupancy_warps: int
    time_ms: float


@dataclass
class DenseAutotuneResult:
    settings: list[DenseSetting]
    best: DenseSetting
    model_setting: DenseSetting
    model_params: DenseParams

    @property
    def model_gap(self) -> float:
        return (self.model_setting.time_ms - self.best.time_ms) \
            / self.best.time_ms

    @property
    def worst(self) -> DenseSetting:
        return max(self.settings, key=lambda s: s.time_ms)


def _estimate(m: int, n: int, tl: int, bs: int,
              device: DeviceSpec, cost: CostModel) -> DenseSetting | None:
    vs = select_vector_size_dense(n, tl, bs)
    vs = min(vs, bs)
    if vs * tl < n:
        return None
    regs = registers_for_thread_load(tl)
    occ = occupancy(device, bs, regs, (bs // max(1, vs)) * 8)
    if occ.blocks_per_sm == 0:
        return None
    padded = vs * tl
    resident_threads = occ.warps_per_sm * device.warp_size
    vector_slots = device.num_sms * max(1, resident_threads // vs)
    c = max(1, -(-m // vector_slots))
    nv = max(1, bs // vs)
    grid = max(1, -(-m // (nv * c)))
    total_vectors = min(grid * nv, m)

    cnt = PerfCounters()
    cnt.global_load_transactions = (
        coalesced_transactions(m * padded * _D)
        + coalesced_transactions(padded * _D))
    cnt.atomic_global_ops = total_vectors * padded
    cnt.atomic_cas_chain = total_vectors
    cnt.flops = 4.0 * m * padded
    cnt.kernel_launches = 1
    if vs > device.warp_size:
        cnt.shared_accesses = m * (vs // 32) / 32
        rows_per_wave = max(1, resident_threads * device.num_sms // vs)
        cnt.barriers = 2.0 * m / rows_per_wave
    eff_occ = min(1.0, occ.fraction(device) * max(1.0, tl / 2.0))
    t = cost.time_ms(cnt, eff_occ)
    return DenseSetting(tl, vs, bs, padded, occ.warps_per_sm, t)


def autotune_dense(m: int, n: int,
                   device: DeviceSpec = GTX_TITAN) -> DenseAutotuneResult:
    """Sweep TL x BS for an ``m x n`` dense input; locate the model's pick."""
    cost = CostModel(device)
    settings: list[DenseSetting] = []
    block_sizes = [128, 256, 384, 512, 640, 768, 896, 1024]
    for bs in block_sizes:
        for tl in range(1, MAX_THREAD_LOAD + 1):
            s = _estimate(m, n, tl, bs, device, cost)
            if s is not None:
                settings.append(s)
    if not settings:
        raise RuntimeError("empty dense search space (n too wide?)")
    best = min(settings, key=lambda s: s.time_ms)

    params = tune_dense(m, n, device)
    ms = _estimate(m, n, params.thread_load, params.block_size, device, cost)
    assert ms is not None
    return DenseAutotuneResult(settings, best, ms, params)
