"""Launch-parameter tuning: the paper's analytical model and the exhaustive
autotuner it is validated against (Figure 6)."""

from .autotune import AutotuneResult, Setting, autotune_sparse, sweep_space
from .autotune_dense import (DenseAutotuneResult, DenseSetting,
                             autotune_dense)
from .dense_params import (MAX_THREAD_LOAD, DenseParams, max_dense_columns,
                           registers_for_thread_load,
                           select_vector_size_dense, tune_dense, wasted_warps)
from .sparse_params import (SPARSE_KERNEL_REGISTERS, SparseParams,
                            max_shared_columns, select_coarsening,
                            select_vector_size, shared_bytes_needed,
                            tune_sparse)

__all__ = [
    "AutotuneResult", "Setting", "autotune_sparse", "sweep_space",
    "DenseAutotuneResult", "DenseSetting", "autotune_dense",
    "MAX_THREAD_LOAD", "DenseParams", "max_dense_columns",
    "registers_for_thread_load", "select_vector_size_dense", "tune_dense",
    "wasted_warps",
    "SPARSE_KERNEL_REGISTERS", "SparseParams", "max_shared_columns",
    "select_coarsening", "select_vector_size", "shared_bytes_needed",
    "tune_sparse",
]
