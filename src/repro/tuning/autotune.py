"""Exhaustive launch-parameter search — the validation study of Figure 6.

The paper sweeps ~1,200 settings (block size x rows-per-vector, at the
Eq.-4 vector size) of the sparse fused kernel on a 500k x 1k sparse matrix
and shows the analytical model's pick is within 2% of the optimum and inside
the best 1% of all settings.  :func:`autotune_sparse` reproduces the sweep
against the cost model, reporting the same two quality metrics.

Counter assembly is factored so the sweep reuses the input-dependent pieces
(row-pass transactions per vector size, the y-gather estimate) across all
settings — one sweep over ~1,200 plans costs a few hundred milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.counters import PerfCounters
from ..gpu.device import DeviceSpec, GTX_TITAN
from ..gpu.memory import CacheModel, coalesced_transactions
from ..kernels.base import SPARSE_STREAM_DERATE, GpuContext
from ..kernels.sparse_baseline import vector_gather_transactions
from ..kernels.sparse_fused import _row_pass_loads
from ..gpu.atomics import shared_atomic_batch
from ..gpu.costmodel import CostModel
from ..gpu.occupancy import occupancy
from ..sparse.csr import CsrMatrix
from .sparse_params import (SPARSE_KERNEL_REGISTERS, SparseParams,
                            shared_bytes_needed, tune_sparse)

_D = 8
_I = 4


@dataclass(frozen=True)
class Setting:
    """One point of the exhaustive sweep."""

    vector_size: int
    block_size: int
    rows_per_vector: int          # the paper's RpV (= coarsening factor C)
    grid_size: int
    time_ms: float


@dataclass
class AutotuneResult:
    """Sweep outcome plus model-quality metrics (Figure 6's claims)."""

    settings: list[Setting]
    best: Setting
    model_setting: Setting
    model_params: SparseParams

    @property
    def model_gap(self) -> float:
        """Relative time gap between the model's pick and the optimum."""
        return (self.model_setting.time_ms - self.best.time_ms) \
            / self.best.time_ms

    @property
    def model_rank_fraction(self) -> float:
        """Fraction of settings strictly faster than the model's pick."""
        faster = sum(s.time_ms < self.model_setting.time_ms
                     for s in self.settings)
        return faster / len(self.settings)

    @property
    def worst(self) -> Setting:
        return max(self.settings, key=lambda s: s.time_ms)


def _estimate_time(X: CsrMatrix, vs: int, bs: int, c: int,
                   device: DeviceSpec, cost: CostModel, cache: CacheModel,
                   row_pass: float, gather: float) -> float | None:
    """Model time of the fused X^T(Xy) kernel for one (VS, BS, C) setting."""
    shm = shared_bytes_needed(bs, vs, X.n)
    if shm > device.shared_memory_per_block:
        return None
    occ = occupancy(device, bs, SPARSE_KERNEL_REGISTERS, shm)
    if occ.blocks_per_sm == 0:
        return None
    nv = max(1, bs // vs)
    grid = max(1, -(-X.m // (nv * c)))

    cnt = PerfCounters()
    cnt.global_load_transactions = row_pass + gather
    active_vectors = max(1, occ.blocks_per_sm * nv)
    hit = cache.second_pass_hit_fraction(X.row_nnz, active_vectors)
    miss_weight = float((X.row_nnz * (1.0 - hit)).sum()) \
        / max(1.0, float(X.nnz))
    cnt.global_load_transactions += row_pass * miss_weight
    cnt.flops = 4.0 * X.nnz
    shm_batch = shared_atomic_batch(X.nnz, X.n, bs)
    cnt.atomic_shared_ops = shm_batch.ops
    cnt.atomic_shared_serialized = shm_batch.serialized
    cnt.shared_accesses = 2 * X.n / 32 * grid
    cnt.barriers = grid / max(1, occ.blocks_per_sm * device.num_sms)
    cnt.atomic_global_ops = grid * X.n
    cnt.atomic_cas_chain = grid
    cnt.kernel_launches = 1
    return cost.time_ms(cnt, occ.fraction(device), SPARSE_STREAM_DERATE)


def sweep_space(X: CsrMatrix, device: DeviceSpec = GTX_TITAN,
                around_model: bool = True) -> tuple[list[int], list[int],
                                                    list[int]]:
    """The paper's search space: VS by Eq. 4, BS in {2^5..2^10}, RpV around
    the model's choice (in powers of two)."""
    model = tune_sparse(X, device)
    vs_values = [model.vector_size]
    bs_values = [w * 32 for w in range(1, 33)]
    c0 = model.coarsening
    rpv_values = sorted({max(1, round(c0 * f))
                         for f in (0.1, 0.2, 0.35, 0.5, 0.7, 1.0, 1.4,
                                   2.0, 2.8, 4.0, 5.7, 8.0, 11.0, 16.0,
                                   23.0, 32.0, 45.0, 64.0, 91.0, 128.0,
                                   181.0, 256.0, 362.0, 512.0, 724.0,
                                   1024.0, 1448.0, 2048.0, 2896.0, 4096.0,
                                   5793.0, 8192.0, 11585.0, 16384.0,
                                   23170.0, 32768.0, 46341.0, 65536.0)})
    return vs_values, bs_values, rpv_values


def autotune_sparse(X: CsrMatrix, device: DeviceSpec = GTX_TITAN,
                    ctx: GpuContext | None = None) -> AutotuneResult:
    """Run the exhaustive sweep and locate the model's pick within it."""
    ctx = ctx or GpuContext(device)
    cost = CostModel(device)
    cache = ctx.cache
    model_params = tune_sparse(X, device)

    vs_values, bs_values, rpv_values = sweep_space(X, device)
    gather = vector_gather_transactions(X, ctx, texture=True)
    row_pass_by_vs = {vs: _row_pass_loads(X, vs, device.warp_size)
                      for vs in vs_values}

    settings: list[Setting] = []
    for vs in vs_values:
        for bs in bs_values:
            if bs % vs:
                continue
            for c in rpv_values:
                t = _estimate_time(X, vs, bs, c, device, cost, cache,
                                   row_pass_by_vs[vs], gather)
                if t is None:
                    continue
                nv = max(1, bs // vs)
                grid = max(1, -(-X.m // (nv * c)))
                settings.append(Setting(vs, bs, c, grid, t))
    if not settings:
        raise RuntimeError("empty search space")

    best = min(settings, key=lambda s: s.time_ms)
    mt = _estimate_time(X, model_params.vector_size,
                        model_params.block_size, model_params.coarsening,
                        device, cost, cache,
                        row_pass_by_vs.get(model_params.vector_size,
                                           _row_pass_loads(
                                               X, model_params.vector_size,
                                               device.warp_size)),
                        gather)
    model_setting = Setting(model_params.vector_size,
                            model_params.block_size,
                            model_params.coarsening,
                            model_params.grid_size, mt)
    return AutotuneResult(settings, best, model_setting, model_params)
