"""Analytical launch-parameter model for the dense fused kernel (§3.3).

The dense kernel is register-hungry: each thread keeps ``TL`` elements of
``X``, ``y``, and the partial ``w`` in named registers (the code generator
unrolls accordingly).  The paper profiles 23 registers at ``TL = 1`` up to
255 at ``TL = 40`` — beyond that the compiler spills and performance
collapses, so ``TL`` is capped at 40.  ``BS`` defaults to the minimum
register-allocation-friendly size (128) to limit inter-vector
synchronization, except for very narrow matrices (n <= 32) where ``BS`` is
raised to 1024 with ``TL = 1`` to hide load latency.  ``VS`` follows Eq. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import DeviceSpec, GTX_TITAN
from ..gpu.launch import LaunchConfig
from ..gpu.occupancy import Occupancy, occupancy

#: TL -> registers/thread, matching the paper's profile (23 @ TL=1, 255 @ TL=40)
MAX_THREAD_LOAD = 40


def registers_for_thread_load(tl: int) -> int:
    """Register footprint of the generated kernel at thread load ``tl``."""
    if tl < 1:
        raise ValueError("thread load must be >= 1")
    return min(255, 23 + round(5.95 * (tl - 1) + 0.5) if tl > 1 else 23)


def select_vector_size_dense(n: int, tl: int, block_size: int) -> int:
    """Eq. 6: VS from the per-thread coverage ``n / TL``."""
    ratio = n / tl
    if ratio > 32:
        return block_size
    for i in range(5, 0, -1):          # 2^i >= ratio > 2^(i-1), i in [1, 5]
        if 2 ** i >= ratio > 2 ** (i - 1):
            return 2 ** i
    return 1


def wasted_warps(n: int, tl: int, vs: int, warp: int = 32) -> int:
    """Warp-loads per vector that fall entirely past the row end."""
    covered = tl * vs
    return max(0, (covered - n) // warp)


@dataclass(frozen=True)
class DenseParams:
    """Resolved launch parameters for the dense fused kernel."""

    thread_load: int
    vector_size: int
    block_size: int
    coarsening: int
    grid_size: int
    registers: int
    occupancy: Occupancy
    padded_n: int

    def launch(self) -> LaunchConfig:
        return LaunchConfig(
            grid_size=self.grid_size,
            block_size=self.block_size,
            shared_bytes=(self.block_size // self.vector_size) * 8,
            registers_per_thread=self.registers,
            vector_size=self.vector_size,
            coarsening=self.coarsening,
            thread_load=self.thread_load,
        )


def tune_dense(m: int, n: int, device: DeviceSpec = GTX_TITAN) -> DenseParams:
    """Full §3.3 resolution for a dense ``m x n`` input."""
    if m < 1 or n < 1:
        raise ValueError("matrix dimensions must be positive")

    if n <= device.warp_size:
        # Narrow-matrix exception: maximum block, one element per thread.
        bs, tl = 1024, 1
        vs = select_vector_size_dense(n, tl, bs)
        regs = registers_for_thread_load(tl)
        occ = occupancy(device, bs, regs, (bs // max(1, vs)) * 8)
    else:
        bs = 128
        best = None
        for tl in range(1, MAX_THREAD_LOAD + 1):
            vs = select_vector_size_dense(n, tl, bs)
            if vs * tl < n:            # vector cannot cover the row
                continue
            regs = registers_for_thread_load(tl)
            occ = occupancy(device, bs, regs, (bs // max(1, vs)) * 8)
            if occ.blocks_per_sm == 0:
                continue
            warps_per_vec = max(1, (vs * tl) // 32)
            waste = wasted_warps(n, tl, vs)
            useful = occ.warps_per_sm * (1.0 - waste / max(1, warps_per_vec))
            key = (useful, -tl)        # prefer max useful warps, then small TL
            if best is None or key > best[0]:
                best = (key, tl, vs, regs, occ)
        if best is None:
            raise ValueError(
                f"no feasible thread load for n={n} at BS={bs} "
                f"(register limit); use the unfused cuBLAS route"
            )
        _, tl, vs, regs, occ = best

    # pad n to the unrolled coverage VS*TL (the kernel pads X and y with
    # zeros; at most one extra warp-load per vector, excluded by the waste
    # term above)
    vs_eff = min(vs, bs)
    padded_n = vs_eff * tl
    resident_threads = occ.warps_per_sm * device.warp_size
    vector_slots = device.num_sms * max(1, resident_threads // vs_eff)
    c = max(1, -(-m // vector_slots))
    nv = max(1, bs // vs_eff)
    grid = max(1, -(-m // (nv * c)))
    return DenseParams(
        thread_load=tl, vector_size=vs_eff, block_size=bs, coarsening=c,
        grid_size=grid, registers=regs, occupancy=occ, padded_n=padded_n,
    )


def max_dense_columns(device: DeviceSpec = GTX_TITAN) -> int:
    """Largest n the register-resident dense kernel can handle (~6K).

    Beyond this the paper recommends falling back to two cuBLAS launches.
    """
    # each thread holds TL elements of X, y, w -> 3*TL doubles = 6*TL regs,
    # TL <= 40 and VS <= 1024 threads cooperating on a row
    return MAX_THREAD_LOAD * 128 + 1024  # 40*128 = 5120 covered + slack
